(* Tests for the §VIII extended thread affinity model and the VN-mode
   shared-memory region: a process borrowing idle cores from its
   neighbors, TLB map swaps on cross-process switches, and the
   designation feasibility checks. *)

open Bg_kabi
open Cnk

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

(* Shared-memory flag/counter layout (the shared region is mapped at the
   same address and physical range in every process). *)
let flag_addr = Mapping.shared_va
let counter_addr = Mapping.shared_va + 8
let slot_addr i = Mapping.shared_va + 64 + (8 * i)

let test_shared_memory_between_processes () =
  let cluster = Cluster.create ~dims:(1, 1, 1) () in
  Cluster.boot_all cluster;
  let seen = ref 0 in
  let image =
    Image.executable ~name:"shm" (fun () ->
        let pid = Bg_rt.Libc.getpid () in
        (* every process publishes into its slot *)
        Bg_rt.Libc.poke (slot_addr pid) (pid * 11);
        ignore (Coro.fetch_add ~addr:counter_addr 1);
        if pid = 1 then begin
          (* wait until all four have published *)
          let rec wait () =
            if Bg_rt.Libc.peek counter_addr < 4 then begin
              Coro.consume 2_000;
              wait ()
            end
          in
          wait ();
          seen := List.fold_left (fun acc p -> acc + Bg_rt.Libc.peek (slot_addr p)) 0 [ 1; 2; 3; 4 ]
        end)
  in
  Cluster.run_job cluster (Job.create ~mode:Job.Vn ~name:"shm" image);
  check_int "all slots visible across processes" (11 * (1 + 2 + 3 + 4)) !seen;
  Alcotest.(check (list (pair int string))) "no faults" []
    (Node.faults (Cluster.node cluster 0))

let run_omp_phase ~designate =
  let cluster = Cluster.create ~dims:(1, 1, 1) () in
  Cluster.boot_all cluster;
  let node = Cluster.node cluster 0 in
  let created = ref 0 and rejected = ref 0 and phase_cycles = ref 0 in
  let image =
    Image.executable ~name:"vn-omp" (fun () ->
        let pid = Bg_rt.Libc.getpid () in
        if pid = 1 then begin
          (* the OpenMP phase: pid 1 wants all four cores *)
          let t0 = Coro.rdtsc () in
          let handles = ref [] in
          for _ = 1 to 3 do
            match
              Bg_rt.Pthread.create (fun () ->
                  Coro.consume 400_000;
                  ignore (Coro.fetch_add ~addr:counter_addr 1))
            with
            | h ->
              incr created;
              handles := h :: !handles
            | exception Sysreq.Syscall_error Errno.EAGAIN -> incr rejected
          done;
          Coro.consume 400_000;
          List.iter Bg_rt.Pthread.join !handles;
          phase_cycles := Coro.rdtsc () - t0;
          Bg_rt.Libc.poke flag_addr 1
        end
        else begin
          (* neighbors idle through the phase, yielding their cores *)
          let rec idle () =
            if Bg_rt.Libc.peek flag_addr = 0 then begin
              ignore (Coro.syscall Sysreq.Sched_yield);
              Coro.consume 1_000;
              idle ()
            end
          in
          idle ()
        end)
  in
  (* 1 thread/core: pid 1's own core is full once its main runs *)
  let job = Job.create ~mode:Job.Vn ~threads_per_core:1 ~name:"omp" image in
  (match Node.launch node job with Ok () -> () | Error e -> failwith e);
  if designate then
    List.iter
      (fun core ->
        match Node.designate_remote node ~core ~pid:1 with
        | Ok () -> ()
        | Error e -> failwith e)
      [ 1; 2; 3 ];
  let finished = ref false in
  Node.on_job_complete node (fun () -> finished := true);
  Cluster.run_until_quiet cluster;
  if not !finished then failwith "vn-omp job did not finish";
  Alcotest.(check (list (pair int string))) "no faults" [] (Node.faults node);
  (!created, !rejected, !phase_cycles)

let test_without_designation_eagain () =
  let created, rejected, _ = run_omp_phase ~designate:false in
  check_int "no extra threads fit" 0 created;
  check_int "three rejected" 3 rejected

let test_with_designation_runs_on_remote_cores () =
  let created, rejected, _ = run_omp_phase ~designate:true in
  check_int "all three placed on remote cores" 3 created;
  check_int "none rejected" 0 rejected

let test_designation_speeds_up_phase () =
  (* with remote cores the 4x400k-cycle phase runs in parallel *)
  let _, _, serial = run_omp_phase ~designate:false in
  let _, _, parallel = run_omp_phase ~designate:true in
  (* serial: only the main's own 400k of work (others rejected);
     parallel: 4 streams concurrently, so roughly the same wall time but
     4x the work. Compare work/cycle instead. *)
  let serial_work = 400_000 and parallel_work = 4 * 400_000 in
  let serial_rate = float_of_int serial_work /. float_of_int serial in
  let parallel_rate = float_of_int parallel_work /. float_of_int parallel in
  check_bool "remote cores raise throughput >2.5x" true (parallel_rate > 2.5 *. serial_rate)

let test_designation_validation () =
  let cluster = Cluster.create ~dims:(1, 1, 1) () in
  Cluster.boot_all cluster;
  let node = Cluster.node cluster 0 in
  let image = Image.executable ~name:"idle" (fun () -> Coro.consume 1_000) in
  (match Node.launch node (Job.create ~mode:Job.Vn ~name:"v" image) with
  | Ok () -> ()
  | Error e -> failwith e);
  (* own core rejected *)
  (match Node.designate_remote node ~core:0 ~pid:1 with
  | Error _ -> ()
  | Ok () -> Alcotest.fail "designating the owning core must fail");
  (* unknown pid rejected *)
  (match Node.designate_remote node ~core:1 ~pid:99 with
  | Error _ -> ()
  | Ok () -> Alcotest.fail "unknown pid accepted");
  (* valid designation visible: core 1 belongs to pid 2 in VN mode, so
     designating pid 3 as its remote is legal *)
  (match Node.designate_remote node ~core:1 ~pid:3 with
  | Ok () -> ()
  | Error e -> Alcotest.failf "valid designation failed: %s" e);
  Alcotest.(check (option int)) "recorded" (Some 3) (Node.remote_designation node ~core:1);
  Cluster.run_until_quiet cluster

let test_tlb_swaps_are_counted () =
  (* run the designated phase and check the trace recorded map swaps *)
  let cluster = Cluster.create ~dims:(1, 1, 1) ~seed:9L () in
  Cluster.boot_all cluster;
  let node = Cluster.node cluster 0 in
  let image =
    Image.executable ~name:"swap" (fun () ->
        let pid = Bg_rt.Libc.getpid () in
        if pid = 1 then begin
          let h = Bg_rt.Pthread.create (fun () -> Coro.consume 50_000) in
          Bg_rt.Pthread.join h;
          Bg_rt.Libc.poke flag_addr 1
        end
        else begin
          let rec idle () =
            if Bg_rt.Libc.peek flag_addr = 0 then begin
              ignore (Coro.syscall Sysreq.Sched_yield);
              idle ()
            end
          in
          idle ()
        end)
  in
  (match Node.launch node (Job.create ~mode:Job.Vn ~threads_per_core:1 ~name:"s" image) with
  | Ok () -> ()
  | Error e -> failwith e);
  (match Node.designate_remote node ~core:1 ~pid:1 with
  | Ok () -> ()
  | Error e -> failwith e);
  let finished = ref false in
  Node.on_job_complete node (fun () -> finished := true);
  Cluster.run_until_quiet cluster;
  check_bool "finished" true !finished;
  Alcotest.(check (list (pair int string))) "no faults" [] (Node.faults node)

let test_dual_mode_core_confinement () =
  (* DUAL: pids 1/2 own cores {0,1}/{2,3}; each proc's extra threads stay
     inside its own core set (limit respected per core) *)
  let cluster = Cluster.create ~dims:(1, 1, 1) () in
  Cluster.boot_all cluster;
  let counts = Array.make 3 0 and rejected = ref 0 in
  let image =
    Image.executable ~name:"dual" (fun () ->
        let pid = Bg_rt.Libc.getpid () in
        (* 1 thread/core, 2 cores: exactly one extra thread fits *)
        let spawn () =
          match Bg_rt.Pthread.create (fun () -> Coro.consume 20_000) with
          | h ->
            counts.(pid) <- counts.(pid) + 1;
            Some h
          | exception Sysreq.Syscall_error Errno.EAGAIN ->
            incr rejected;
            None
        in
        let h1 = spawn () in
        let h2 = spawn () in
        List.iter (function Some h -> Bg_rt.Pthread.join h | None -> ()) [ h1; h2 ])
  in
  Cluster.run_job cluster (Job.create ~mode:Job.Dual ~threads_per_core:1 ~name:"d" image);
  check_int "pid 1 placed one" 1 counts.(1);
  check_int "pid 2 placed one" 1 counts.(2);
  check_int "overflow rejected per proc" 2 !rejected;
  Alcotest.(check (list (pair int string))) "no faults" []
    (Node.faults (Cluster.node cluster 0))

let suite =
  [
    Alcotest.test_case "dual: core confinement" `Quick test_dual_mode_core_confinement;
    Alcotest.test_case "shm: cross-process visibility" `Quick
      test_shared_memory_between_processes;
    Alcotest.test_case "affinity: EAGAIN without designation" `Quick
      test_without_designation_eagain;
    Alcotest.test_case "affinity: remote cores host threads" `Quick
      test_with_designation_runs_on_remote_cores;
    Alcotest.test_case "affinity: throughput gain" `Quick test_designation_speeds_up_phase;
    Alcotest.test_case "affinity: validation" `Quick test_designation_validation;
    Alcotest.test_case "affinity: map swaps run clean" `Quick test_tlb_swaps_are_counted;
  ]
