(* Experiment-level tests: the FWQ noise contrast (Figs 5-7), noise
   injection and scaling (Petrini effect), stability statistics (§V.D),
   bringup tooling (scans, waveforms, multichip alignment, the timing-bug
   hunt, VHDL boot economics) and the capability tables (II & III). *)

open Bg_engine
open Bg_kabi
module Noise = Bg_noise
module Bringup = Bg_bringup
module Caps = Bg_caps

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

(* ------------------------------------------------------------------ *)
(* FWQ: Figs 5-7 *)

let test_fwq_cnk_quiet () =
  let r = Noise.Fwq_harness.run_on_cnk ~samples:1000 () in
  check_int "four threads" 4 (List.length r.Noise.Fwq_harness.threads);
  List.iter
    (fun t ->
      check_int "min is the quantum floor" 658_958
        (t.Noise.Fwq_harness.min_cycles - (t.Noise.Fwq_harness.min_cycles - 658_958))
      (* every sample at least the quantum *);
      check_bool "CNK spread under 0.01%" true (t.Noise.Fwq_harness.spread_percent < 0.01))
    r.Noise.Fwq_harness.threads

let test_fwq_fwk_noisy_with_per_core_contrast () =
  let r = Noise.Fwq_harness.run_on_fwk ~samples:3000 ~noise_seed:11L () in
  let spread i =
    (List.nth r.Noise.Fwq_harness.threads i).Noise.Fwq_harness.spread_percent
  in
  (* threads spawn 0..3; thread 0 is the main on core 0; others land on
     least-loaded cores 1..3 in order *)
  check_bool "a heavy core exceeds 3%" true
    (spread 0 > 3.0 || spread 2 > 3.0 || spread 3 > 3.0);
  check_bool "all cores noisier than CNK" true
    (List.for_all (fun t -> t.Noise.Fwq_harness.spread_percent > 0.3)
       r.Noise.Fwq_harness.threads)

let test_fwq_cnk_vs_fwk_factor () =
  let cnk = Noise.Fwq_harness.run_on_cnk ~samples:800 () in
  let fwk = Noise.Fwq_harness.run_on_fwk ~samples:800 ~noise_seed:3L () in
  let c = Noise.Fwq_harness.max_spread cnk in
  let f = Noise.Fwq_harness.max_spread fwk in
  check_bool "orders of magnitude apart" true (f > 100.0 *. c)

let test_fwq_histogram () =
  let r = Noise.Fwq_harness.run_on_cnk ~samples:500 () in
  let t = List.hd r.Noise.Fwq_harness.threads in
  let h = Noise.Fwq_harness.histogram t ~bins:10 in
  check_int "ten bins" 10 (List.length h);
  check_int "all samples counted" 500 (List.fold_left (fun a (_, c) -> a + c) 0 h)

(* ------------------------------------------------------------------ *)
(* Noise characterization: inferred signature matches the configuration *)

let test_analysis_recovers_injected_signature () =
  (* inject a known profile into quiet CNK and recover its parameters *)
  let period = 2_000_000 and duration = 30_000 in
  let cluster = Cnk.Cluster.create ~dims:(1, 1, 1) () in
  Cnk.Cluster.boot_all cluster;
  Noise.Injection.attach (Cnk.Cluster.node cluster 0)
    ~profile:{ Noise.Injection.period_cycles = period; duration_cycles = duration; jitter = 0.1 }
    ~seed:8L
    ~until:(Sim.now (Cnk.Cluster.sim cluster) + 6_000_000_000);
  let entry, collect = Bg_apps.Fwq.program ~samples:3000 ~threads:1 () in
  Cnk.Cluster.run_job cluster
    (Bg_kabi.Job.create ~name:"sig" (Bg_kabi.Image.executable ~name:"sig" entry));
  let samples = List.assoc 0 (collect ()).Bg_apps.Fwq.thread_samples in
  let s = Noise.Analysis.characterize samples in
  (* configured: one ~30k-cycle event every ~2M cycles = 1.5% cpu, ~425/s *)
  check_bool "event magnitude recovered" true
    (Float.abs (s.Noise.Analysis.mean_stolen -. float_of_int duration)
    < 0.2 *. float_of_int duration);
  let expected_rate = Bg_engine.Cycles.frequency_hz /. float_of_int period in
  check_bool "strike rate recovered" true
    (Float.abs (s.Noise.Analysis.events_per_second -. expected_rate)
    < 0.25 *. expected_rate);
  check_bool "cpu share recovered" true
    (Float.abs (s.Noise.Analysis.cpu_fraction -. 0.015) < 0.006)

let test_analysis_quiet_kernel_is_eventless () =
  let r = Noise.Fwq_harness.run_on_cnk ~samples:500 () in
  let t = List.hd r.Noise.Fwq_harness.threads in
  let s = Noise.Analysis.characterize t.Noise.Fwq_harness.samples in
  check_int "no events above threshold" 0 s.Noise.Analysis.event_count

let test_analysis_classifies_linux_noise () =
  let r = Noise.Fwq_harness.run_on_fwk ~samples:5000 ~noise_seed:21L () in
  let t = List.hd r.Noise.Fwq_harness.threads in
  let s = Noise.Analysis.characterize t.Noise.Fwq_harness.samples in
  check_bool "many events" true (s.Noise.Analysis.event_count > 100);
  (* the tick population (small) dominates counts; daemon-class events
     (kswapd ~22k, pdflush ~14k) appear as a heavy tail *)
  let classes = Noise.Analysis.classify s ~bins:8 in
  check_bool "multiple magnitude classes" true (List.length classes >= 2);
  (match classes with
  | (_, _, c0) :: rest ->
    check_bool "smallest class dominates" true
      (List.for_all (fun (_, _, c) -> c <= c0) rest)
  | [] -> Alcotest.fail "no classes")

(* ------------------------------------------------------------------ *)
(* Injection + scaling *)

let test_injection_raises_fwq_spread () =
  let cluster = Cnk.Cluster.create ~dims:(1, 1, 1) () in
  Cnk.Cluster.boot_all cluster;
  let profile =
    { Noise.Injection.period_cycles = 500_000; duration_cycles = 25_000; jitter = 0.3 }
  in
  Noise.Injection.attach (Cnk.Cluster.node cluster 0) ~profile ~seed:5L
    ~until:(Sim.now (Cnk.Cluster.sim cluster) + 3_000_000_000);
  let entry, collect = Bg_apps.Fwq.program ~samples:800 ~threads:4 () in
  Cnk.Cluster.run_job cluster
    (Bg_kabi.Job.create ~name:"fwq" (Bg_kabi.Image.executable ~name:"fwq" entry));
  let r = collect () in
  let spread = Bg_apps.Fwq.max_spread_percent r in
  check_bool "injected noise visible" true (spread > 2.0)

let test_scaling_magnification () =
  let slow nodes =
    Noise.Scaling.allreduce_slowdown ~nodes ~iterations:300 ~work_cycles:850_000
      ~profile:Noise.Scaling.Linux_daemons ~seed:7L
  in
  let s1 = slow 1 in
  let s64 = slow 64 in
  let s4096 = slow 4096 in
  check_bool "noise magnifies with scale" true (s1 < s64 && s64 < s4096);
  check_bool "4096 nodes suffer >2% slowdown" true (s4096 > 1.02);
  let quiet =
    Noise.Scaling.allreduce_slowdown ~nodes:4096 ~iterations:300 ~work_cycles:850_000
      ~profile:Noise.Scaling.Quiet ~seed:7L
  in
  check_bool "quiet kernel immune at scale" true (quiet < 1.005)

let test_scaling_synchronized_daemons () =
  (* SSV.A technique 1: coordinated delays do not compound with scale *)
  let f profile nodes =
    Noise.Scaling.allreduce_slowdown ~nodes ~iterations:300 ~work_cycles:850_000
      ~profile ~seed:7L
  in
  let sync1 = f Noise.Scaling.Linux_synchronized 1 in
  let sync4096 = f Noise.Scaling.Linux_synchronized 4096 in
  let unsync4096 = f Noise.Scaling.Linux_daemons 4096 in
  check_bool "synchronized noise does not magnify" true
    (Float.abs (sync4096 -. sync1) < 0.003);
  check_bool "far below unsynchronized at scale" true (sync4096 < unsync4096 -. 0.02)

let test_scaling_injected_profile () =
  let p =
    { Noise.Injection.period_cycles = 850_000; duration_cycles = 8_500; jitter = 0.5 }
  in
  let s =
    Noise.Scaling.allreduce_slowdown ~nodes:1024 ~iterations:200 ~work_cycles:850_000
      ~profile:(Noise.Scaling.Injected p) ~seed:9L
  in
  (* 1% local noise -> several percent at 1024-node scale *)
  check_bool "injection magnified" true (s > 1.01)

let test_stability_stddev_contrast () =
  let quiet =
    Noise.Scaling.allreduce_stddev_us ~nodes:16 ~iterations:2000 ~work_cycles:20_000
      ~profile:Noise.Scaling.Quiet ~seed:3L
  in
  let linux =
    Noise.Scaling.allreduce_stddev_us ~nodes:4 ~iterations:2000 ~work_cycles:20_000
      ~profile:Noise.Scaling.Linux_daemons ~seed:3L
  in
  check_bool "CNK-style stddev effectively 0" true (quiet < 0.05);
  check_bool "Linux-style stddev in microseconds" true (linux > 1.0)

let test_linpack_spread_contrast () =
  let cnk_spread, _ =
    Noise.Scaling.linpack_spread_percent ~nodes:32 ~runs:12 ~panels:400
      ~panel_cycles:850_000 ~profile:Noise.Scaling.Quiet ~seed:5L
  in
  let linux_spread, _ =
    Noise.Scaling.linpack_spread_percent ~nodes:32 ~runs:12 ~panels:400
      ~panel_cycles:850_000 ~profile:Noise.Scaling.Linux_daemons ~seed:5L
  in
  check_bool "CNK spread ~0.01%-scale" true (cnk_spread < 0.05);
  check_bool "Linux spread much larger" true (linux_spread > 10.0 *. Float.max cnk_spread 0.001)

(* ------------------------------------------------------------------ *)
(* Bringup *)

let bringup_run ?(seed = 1L) () =
  let cluster = Cnk.Cluster.create ~dims:(2, 1, 1) ~seed () in
  Cnk.Cluster.boot_all cluster;
  let image =
    Bg_kabi.Image.executable ~name:"scan-target" (fun () ->
        for _ = 1 to 50 do
          Coro.consume 5_000;
          ignore (Bg_rt.Libc.gettid ())
        done)
  in
  Cnk.Cluster.launch_all cluster ~ranks:[ 0 ] (Bg_kabi.Job.create ~name:"st" image);
  cluster

let test_scan_is_reproducible () =
  check_bool "same cycle, same state" true
    (Bringup.Waveform.reproducible ~run:(bringup_run ~seed:1L) ~rank:0 ~cycle:200_000)

let test_scan_captures_progress () =
  let a = Bringup.Scan.capture_at ~run:(bringup_run ~seed:1L) ~rank:0 ~cycle:150_000 in
  let b = Bringup.Scan.capture_at ~run:(bringup_run ~seed:1L) ~rank:0 ~cycle:3_000_000 in
  check_bool "state evolves between cycles" false
    (Fnv.equal a.Bringup.Scan.trace_digest b.Bringup.Scan.trace_digest)

let test_waveform_no_false_divergence () =
  let wf seed =
    Bringup.Waveform.assemble ~run:(bringup_run ~seed) ~rank:0 ~from_cycle:100_000
      ~cycles:5 ~stride:1000 ()
  in
  check_int "five samples" 5 (Bringup.Waveform.length (wf 1L));
  Alcotest.(check (option int)) "identical runs don't diverge" None
    (Bringup.Waveform.divergence (wf 1L) (wf 1L))

let test_multichip_alignment () =
  let a = Bringup.Multichip.aligned_packet_cycle ~seed:2L ~src:0 ~dst:1 ~work_before_send:10_000 () in
  let b = Bringup.Multichip.aligned_packet_cycle ~seed:2L ~src:0 ~dst:1 ~work_before_send:10_000 () in
  check_int "same relative injection cycle across reboots" a b;
  check_bool "after the compute window" true (a > 10_000)

let test_timing_bug_hunt () =
  let bug = Bringup.Timing_bug.default_bug in
  (* identify which of 4 chips are susceptible (manufacturing skew) *)
  let machine = Bg_kabi.Machine.create ~dims:(4, 1, 1) () in
  let susceptible =
    List.filter
      (fun r -> Bringup.Timing_bug.susceptible bug (Bg_kabi.Machine.chip machine r))
      [ 0; 1; 2; 3 ]
  in
  check_bool "the bug affects some but not all chips" true
    (List.length susceptible > 0 && List.length susceptible < 4);
  let findings = Bringup.Timing_bug.hunt bug ~ranks:4 ~samples:8 ~runs_per_rank:4 ~seed:77L in
  check_bool "hunt found the bug" true (findings <> []);
  List.iter
    (fun f ->
      check_bool "every finding is a susceptible chip" true
        (List.mem f.Bringup.Timing_bug.rank susceptible);
      check_bool "divergence localized near the glitch" true
        (abs (f.Bringup.Timing_bug.diverged_at - bug.Bringup.Timing_bug.glitch_cycle) < 3_000))
    findings

let test_vhdl_boot_economics () =
  let rows = Bringup.Vhdl_sim.comparison () in
  check_int "three kernels" 3 (List.length rows);
  let find name = List.find (fun r -> r.Bringup.Vhdl_sim.kernel = name) rows in
  let cnk = find "CNK" and stripped = find "Linux (stripped)" and full = find "Linux (full)" in
  (* a couple of hours vs days vs weeks *)
  check_bool "cnk in hours" true
    (cnk.Bringup.Vhdl_sim.wall > 3600.0 && cnk.Bringup.Vhdl_sim.wall < 6.0 *. 3600.0);
  check_bool "stripped in days" true
    (stripped.Bringup.Vhdl_sim.wall > 86400.0
    && stripped.Bringup.Vhdl_sim.wall < 7.0 *. 86400.0);
  check_bool "full in weeks" true (full.Bringup.Vhdl_sim.wall > 14.0 *. 86400.0);
  Alcotest.(check string) "human rendering" "3.0 days"
    (Bringup.Vhdl_sim.human ~seconds:(3.0 *. 86400.0))

(* ------------------------------------------------------------------ *)
(* Capability tables *)

let test_table2_matches_paper () =
  check_int "eleven rows" 11 (List.length Caps.Matrix.table2);
  let cell d =
    match Caps.Matrix.find d with
    | Some c -> (Caps.Matrix.ease_to_string c.Caps.Matrix.use_cnk,
                 Caps.Matrix.ease_to_string c.Caps.Matrix.use_linux)
    | None -> Alcotest.failf "missing row %s" d
  in
  Alcotest.(check (pair string string)) "large pages" ("easy", "medium") (cell "Large page use");
  Alcotest.(check (pair string string)) "no TLB misses" ("easy", "not avail") (cell "No TLB misses");
  Alcotest.(check (pair string string)) "protection" ("not avail", "easy")
    (cell "Full memory protection");
  Alcotest.(check (pair string string)) "contiguous" ("easy", "easy - hard")
    (cell "Large physically contiguous memory");
  Alcotest.(check (pair string string)) "cycle repro" ("easy", "not avail")
    (cell "Cycle reproducible execution");
  Alcotest.(check (pair string string)) "overcommit" ("easy - not avail", "medium")
    (cell "Over commit of threads")

let test_table3_subset () =
  check_int "six rows, as the paper" 6 (List.length Caps.Matrix.table3);
  List.iter
    (fun c ->
      check_bool "every table3 row extends a table2 row" true
        (List.memq c Caps.Matrix.table2))
    Caps.Matrix.table3

let test_tables_render () =
  let s2 = Format.asprintf "%a" Caps.Matrix.pp_table2 () in
  let s3 = Format.asprintf "%a" Caps.Matrix.pp_table3 () in
  check_bool "table2 text" true (String.length s2 > 400);
  check_bool "table3 text" true (String.length s3 > 200)

let suite =
  [
    Alcotest.test_case "fwq: cnk quiet" `Quick test_fwq_cnk_quiet;
    Alcotest.test_case "fwq: fwk noisy, per-core" `Quick test_fwq_fwk_noisy_with_per_core_contrast;
    Alcotest.test_case "fwq: contrast factor" `Quick test_fwq_cnk_vs_fwk_factor;
    Alcotest.test_case "fwq: histogram" `Quick test_fwq_histogram;
    Alcotest.test_case "inject: raises spread" `Quick test_injection_raises_fwq_spread;
    Alcotest.test_case "analysis: recovers injection" `Quick
      test_analysis_recovers_injected_signature;
    Alcotest.test_case "analysis: quiet is eventless" `Quick
      test_analysis_quiet_kernel_is_eventless;
    Alcotest.test_case "analysis: classifies linux" `Quick test_analysis_classifies_linux_noise;
    Alcotest.test_case "scaling: magnification" `Quick test_scaling_magnification;
    Alcotest.test_case "scaling: synchronized daemons" `Quick
      test_scaling_synchronized_daemons;
    Alcotest.test_case "scaling: injected" `Quick test_scaling_injected_profile;
    Alcotest.test_case "stability: allreduce stddev" `Quick test_stability_stddev_contrast;
    Alcotest.test_case "stability: linpack spread" `Quick test_linpack_spread_contrast;
    Alcotest.test_case "bringup: scan reproducible" `Quick test_scan_is_reproducible;
    Alcotest.test_case "bringup: scan progresses" `Quick test_scan_captures_progress;
    Alcotest.test_case "bringup: waveform stable" `Quick test_waveform_no_false_divergence;
    Alcotest.test_case "bringup: multichip aligned" `Quick test_multichip_alignment;
    Alcotest.test_case "bringup: timing-bug hunt" `Quick test_timing_bug_hunt;
    Alcotest.test_case "bringup: vhdl boot" `Quick test_vhdl_boot_economics;
    Alcotest.test_case "caps: table2 cells" `Quick test_table2_matches_paper;
    Alcotest.test_case "caps: table3 subset" `Quick test_table3_subset;
    Alcotest.test_case "caps: render" `Quick test_tables_render;
  ]
