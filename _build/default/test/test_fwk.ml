(* Tests for the Linux-like FWK baseline: buddy allocator, noise model,
   preemptive noisy scheduling, demand paging, enforced mprotect, local
   VFS, and the "same runtime binary runs on both kernels" property. *)

open Bg_engine
open Bg_kabi
module Rt = Bg_rt
module Fwk = Bg_fwk
module Noise = Bg_noise

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let mb = 1024 * 1024

(* ------------------------------------------------------------------ *)
(* Buddy *)

let test_buddy_alloc_free () =
  let b = Fwk.Buddy.create ~bytes:(16 * mb) in
  check_int "all free" (16 * mb) (Fwk.Buddy.free_bytes b);
  let a = Result.get_ok (Fwk.Buddy.alloc b ~order:12) in
  check_int "aligned" 0 (a mod 4096);
  check_int "free shrank" ((16 * mb) - 4096) (Fwk.Buddy.free_bytes b);
  Fwk.Buddy.free b ~addr:a ~order:12;
  check_int "all free again" (16 * mb) (Fwk.Buddy.free_bytes b);
  (* after full coalescing a 16MB block is available again *)
  Alcotest.(check (option int)) "coalesced" (Some 24) (Fwk.Buddy.largest_free_order b)

let test_buddy_split_and_coalesce () =
  let b = Fwk.Buddy.create ~bytes:(1 lsl 20) in
  let blocks = List.init 256 (fun _ -> Result.get_ok (Fwk.Buddy.alloc b ~order:12)) in
  check_int "exhausted" 0 (Fwk.Buddy.free_bytes b);
  (match Fwk.Buddy.alloc b ~order:12 with
  | Error Errno.ENOMEM -> ()
  | _ -> Alcotest.fail "expected ENOMEM");
  List.iter (fun addr -> Fwk.Buddy.free b ~addr ~order:12) blocks;
  Alcotest.(check (option int)) "full coalesce" (Some 20) (Fwk.Buddy.largest_free_order b)

let test_buddy_fragmentation_metric () =
  let b = Fwk.Buddy.create ~bytes:(1 lsl 20) in
  Alcotest.(check (float 0.001)) "unfragmented" 0.0 (Fwk.Buddy.fragmentation b);
  (* allocate everything as 4K, free every other block: max fragmentation *)
  let blocks = List.init 256 (fun _ -> Result.get_ok (Fwk.Buddy.alloc b ~order:12)) in
  List.iteri (fun i addr -> if i mod 2 = 0 then Fwk.Buddy.free b ~addr ~order:12) blocks;
  check_bool "fragmented" true (Fwk.Buddy.fragmentation b > 0.9);
  Alcotest.(check (option int)) "only 4K available" (Some 12) (Fwk.Buddy.largest_free_order b)

let test_buddy_double_free_detected () =
  let b = Fwk.Buddy.create ~bytes:(1 lsl 20) in
  let a = Result.get_ok (Fwk.Buddy.alloc b ~order:12) in
  Fwk.Buddy.free b ~addr:a ~order:12;
  Alcotest.(check bool) "double free raises" true
    (try
       Fwk.Buddy.free b ~addr:a ~order:12;
       false
     with Invalid_argument _ -> true)

(* ------------------------------------------------------------------ *)
(* Noise model *)

let test_noise_quiet_is_ticks_only () =
  let n =
    Fwk.Noise_model.create ~daemons:[] ~rng:(Rng.create 1L) ()
  in
  (* one 100k-cycle quantum starting at 0 crosses no tick (first at 850k) *)
  check_int "no interference" 100_000 (Fwk.Noise_model.advance n ~start:0 ~work:100_000);
  (* a quantum crossing the tick pays the handler *)
  let finish = Fwk.Noise_model.advance n ~start:800_000 ~work:100_000 in
  check_bool "tick charged" true (finish > 900_000);
  check_bool "stolen recorded" true (Fwk.Noise_model.stolen_cycles n > 0)

let test_noise_heavy_core_noisier () =
  (* The paper's per-core contrast is in the worst-case quantum (Figs 5-7),
     not the mean: cores 0/2/3 show rare large excursions, core 1 only the
     tick + rcu floor. *)
  let worst daemons =
    let n = Fwk.Noise_model.create ~daemons ~rng:(Rng.create 7L) () in
    let worst = ref 0 in
    let t = ref 0 in
    for _ = 1 to 2000 do
      let fin = Fwk.Noise_model.advance n ~start:!t ~work:658_958 in
      worst := max !worst (fin - !t - 658_958);
      t := fin
    done;
    !worst
  in
  let heavy = worst (Fwk.Noise_model.suse_daemon_set ~core:0) in
  let light = worst (Fwk.Noise_model.suse_daemon_set ~core:1) in
  check_bool "core0 worst-case above core1's" true (heavy > 2 * light)

let test_noise_deterministic () =
  let run () =
    let n =
      Fwk.Noise_model.create ~daemons:(Fwk.Noise_model.suse_daemon_set ~core:0)
        ~rng:(Rng.create 5L) ()
    in
    List.init 100 (fun i -> Fwk.Noise_model.advance n ~start:(i * 1_000_000) ~work:658_958)
  in
  Alcotest.(check (list int)) "same seed same timeline" (run ()) (run ())

(* ------------------------------------------------------------------ *)
(* FWK node end-to-end *)

let run_on_fwk ?noise_seed f =
  let machine = Machine.create ~dims:(1, 1, 1) () in
  let node = Fwk.Node.create ?noise_seed machine ~rank:0 ~stripped:true () in
  let done_ = ref false in
  Fwk.Node.boot node ~on_ready:(fun () ->
      Fwk.Node.on_job_complete node (fun () -> done_ := true);
      match Fwk.Node.launch node (Job.create ~name:"t" (Image.executable ~name:"t" f)) with
      | Ok () -> ()
      | Error e -> failwith e);
  ignore (Sim.run machine.Machine.sim);
  if not !done_ then failwith "fwk job did not finish";
  node

let test_fwk_runs_same_runtime () =
  (* The very same Bg_rt runtime used on CNK: malloc, pthreads, mutex. *)
  let total = ref (-1) and sysname = ref "" in
  let node =
    run_on_fwk (fun () ->
        sysname := (Rt.Libc.uname ()).Sysreq.sysname;
        let m = Rt.Pthread.Mutex.create () in
        let counter = Rt.Malloc.malloc 8 in
        Rt.Libc.poke counter 0;
        let bump () =
          for _ = 1 to 20 do
            Rt.Pthread.Mutex.lock m;
            Rt.Libc.poke counter (Rt.Libc.peek counter + 1);
            Rt.Pthread.Mutex.unlock m
          done
        in
        let ws = List.init 3 (fun _ -> Rt.Pthread.create bump) in
        bump ();
        List.iter Rt.Pthread.join ws;
        total := Rt.Libc.peek counter)
  in
  Alcotest.(check string) "it's Linux" "Linux" !sysname;
  check_int "mutex works on fwk" 80 !total;
  Alcotest.(check (list (pair int string))) "no faults" [] (Fwk.Node.faults node)

let test_fwk_demand_paging_counts () =
  let node =
    run_on_fwk (fun () ->
        let a = Rt.Malloc.malloc (256 * 4096) in
        (* touch 256 distinct pages *)
        for i = 0 to 255 do
          Rt.Libc.poke (a + (i * 4096)) i
        done)
  in
  check_bool "minor faults taken" true (Fwk.Node.minor_faults node >= 256)

let test_fwk_tlb_pressure_evicts () =
  let node =
    run_on_fwk (fun () ->
        let pages = 256 in
        let a = Rt.Malloc.malloc (pages * 4096) in
        (* two sweeps over 256 pages with a 64-entry TLB: second sweep
           still misses (capacity), so refills/evictions accumulate *)
        for _ = 1 to 2 do
          for i = 0 to pages - 1 do
            Rt.Libc.poke (a + (i * 4096)) i
          done
        done)
  in
  check_bool "TLB evictions under 4K paging" true (Fwk.Node.tlb_refills node > 256)

let test_fwk_noise_varies_identical_work () =
  let samples = ref [] in
  let _node =
    run_on_fwk (fun () ->
        for _ = 1 to 200 do
          let t0 = Coro.rdtsc () in
          Coro.consume 658_958;
          let t1 = Coro.rdtsc () in
          samples := (t1 - t0) :: !samples
        done)
  in
  let arr = Array.of_list (List.map float_of_int !samples) in
  let s = Stats.summarize arr in
  check_bool "noise spread over 1%" true (Stats.spread_percent s > 1.0)

let test_fwk_preemption_interleaves () =
  (* two CPU-bound threads forced onto one core: the 10 ms time slice must
     interleave them (completions close together), not run them serially *)
  let done_at = Array.make 2 0 in
  let _node =
    run_on_fwk (fun () ->
        (* saturate cores 1..3 so the competitor lands on core 0 *)
        let parked =
          List.init 3 (fun _ -> Rt.Pthread.create (fun () -> Coro.consume 80_000_000))
        in
        let other =
          Rt.Pthread.create (fun () ->
              Coro.consume 30_000_000;
              done_at.(1) <- Coro.rdtsc ())
        in
        Coro.consume 30_000_000;
        done_at.(0) <- Coro.rdtsc ();
        Rt.Pthread.join other;
        List.iter Rt.Pthread.join parked)
  in
  let a = done_at.(0) and b = done_at.(1) in
  check_bool "both ran" true (a > 0 && b > 0);
  (* serial execution would separate completions by ~30M cycles; slicing
     keeps them within ~1.5 slices of each other *)
  check_bool "interleaved by the time slice" true (abs (a - b) < 15_000_000)

let test_fwk_same_seed_identical_noise () =
  let run () =
    let r = Noise.Fwq_harness.run_on_fwk ~samples:400 ~noise_seed:33L () in
    List.map
      (fun t -> Array.to_list t.Noise.Fwq_harness.samples)
      r.Noise.Fwq_harness.threads
  in
  Alcotest.(check (list (list int))) "deterministic given its seed" (run ()) (run ())

let test_fwk_overcommit_allowed () =
  (* 20 threads on 4 cores: Linux timeshares them happily (Table II). *)
  let finished = ref 0 in
  let node =
    run_on_fwk (fun () ->
        let done_ctr = Rt.Malloc.malloc 8 in
        Rt.Libc.poke done_ctr 0;
        let ws =
          List.init 20 (fun _ ->
              Rt.Pthread.create (fun () ->
                  Coro.consume 100_000;
                  ignore (Coro.fetch_add ~addr:done_ctr 1)))
        in
        List.iter Rt.Pthread.join ws;
        finished := Rt.Libc.peek done_ctr)
  in
  check_int "all 20 ran" 20 !finished;
  Alcotest.(check (list (pair int string))) "no faults" [] (Fwk.Node.faults node)

let test_fwk_mprotect_enforced () =
  (* Unlike CNK, Linux honors page protection (Table II). *)
  let node =
    run_on_fwk (fun () ->
        let a = Rt.Libc.mmap_anon ~length:4096 in
        Rt.Libc.poke a 1;
        (* our fwk mprotect takes effect per page *)
        Sysreq.expect_unit
          (Coro.syscall
             (Sysreq.Mprotect { addr = a; length = 4096; prot = Bg_hw.Tlb.perm_ro }));
        Rt.Libc.poke a 2 (* must fault *))
  in
  match Fwk.Node.faults node with
  | [ (_, _) ] -> ()
  | l -> Alcotest.failf "expected 1 fault, got %d" (List.length l)

let test_fwk_no_vtop () =
  let errno = ref "" in
  let _node =
    run_on_fwk (fun () ->
        try ignore (Rt.Libc.virtual_to_physical 0)
        with Sysreq.Syscall_error e -> errno := Errno.to_string e)
  in
  Alcotest.(check string) "v->p not available on Linux" "ENOSYS" !errno

let test_fwk_local_io () =
  let back = ref "" in
  let node =
    run_on_fwk (fun () ->
        let fd = Rt.Libc.openf ~flags:{ Sysreq.o_rdwr with Sysreq.creat = true } "local.txt" in
        ignore (Rt.Libc.write_string fd "fwk data");
        ignore (Rt.Libc.lseek fd ~offset:0 ~whence:Sysreq.Seek_set);
        back := Bytes.to_string (Rt.Libc.read fd ~len:100);
        Rt.Libc.close fd)
  in
  Alcotest.(check string) "local vfs roundtrip" "fwk data" !back;
  let inode = Result.get_ok (Bg_cio.Fs.resolve (Fwk.Node.fs node) ~cwd:"/" "/local.txt") in
  check_int "file size" 8 (Bg_cio.Fs.stat (Fwk.Node.fs node) inode).Sysreq.st_size

let test_fwk_file_mmap_demand_paged () =
  let contents = ref "" in
  let node =
    run_on_fwk (fun () ->
        let fd = Rt.Libc.openf ~flags:{ Sysreq.o_rdwr with Sysreq.creat = true } "lib.so" in
        ignore (Rt.Libc.write fd (Bytes.make 16_384 'L'));
        let addr = Rt.Libc.mmap_file ~fd ~length:16_384 ~offset:0 in
        Rt.Libc.close fd;
        (* touch page 0 and page 3: two major faults, correct contents *)
        contents := Bytes.to_string (Coro.load ~addr ~len:4);
        ignore (Coro.load ~addr:(addr + (3 * 4096)) ~len:4))
  in
  Alcotest.(check string) "page content read at fault" "LLLL" !contents;
  check_int "exactly the touched pages faulted" 2 (Fwk.Node.major_faults node)

let test_fwk_dynlink_noise_at_runtime () =
  (* SSIV.B.2 ablation: on a paging kernel, touching a freshly mapped
     library mid-computation dents the timing; CNK pays it all at load *)
  let spread = ref 0.0 in
  let _node =
    run_on_fwk (fun () ->
        let fd = Rt.Libc.openf ~flags:{ Sysreq.o_rdwr with Sysreq.creat = true } "big.so" in
        ignore (Rt.Libc.write fd (Bytes.make (64 * 4096) 'x'));
        let addr = Rt.Libc.mmap_file ~fd ~length:(64 * 4096) ~offset:0 in
        Rt.Libc.close fd;
        let samples = Array.make 64 0.0 in
        for i = 0 to 63 do
          let t0 = Coro.rdtsc () in
          Coro.consume 10_000;
          (* every 8th quantum touches a new page of the library *)
          if i mod 8 = 0 then ignore (Coro.load ~addr:(addr + (i * 4096)) ~len:8);
          samples.(i) <- float_of_int (Coro.rdtsc () - t0)
        done;
        spread := Bg_engine.Stats.spread_percent (Bg_engine.Stats.summarize samples))
  in
  check_bool "page-in dents the loop" true (!spread > 50.0)

let test_fwk_page_cache_reclaim () =
  (* a tiny-memory node: anonymous pressure evicts clean file pages, the
     program survives, and re-touching a discarded page re-reads it *)
  let params = { Bg_hw.Params.bgp with Bg_hw.Params.dram_bytes = 8 * 1024 * 1024 } in
  let machine = Machine.create ~params ~dims:(1, 1, 1) () in
  let node = Fwk.Node.create ~noise_seed:1L machine ~rank:0 ~stripped:true () in
  let survived = ref false and reread = ref "" in
  Fwk.Node.boot node ~on_ready:(fun () ->
      match
        Fwk.Node.launch node
          (Job.create ~name:"p"
             (Image.executable ~name:"p" (fun () ->
                  let file_bytes = 4 * 1024 * 1024 in
                  let fd =
                    Rt.Libc.openf ~flags:{ Sysreq.o_rdwr with Sysreq.creat = true } "data"
                  in
                  ignore (Rt.Libc.write fd (Bytes.make file_bytes 'F'));
                  let maddr = Rt.Libc.mmap_file ~fd ~length:file_bytes ~offset:0 in
                  Rt.Libc.close fd;
                  (* make the file resident *)
                  for pg = 0 to (file_bytes / 4096) - 1 do
                    ignore (Coro.load ~addr:(maddr + (pg * 4096)) ~len:1)
                  done;
                  (* anonymous pressure: ~4.6 MB of touched heap *)
                  let a = Rt.Libc.mmap_anon ~length:(4_600 * 1024) in
                  for pg = 0 to (4_600 * 1024 / 4096) - 1 do
                    Rt.Libc.poke (a + (pg * 4096)) pg
                  done;
                  (* a discarded file page comes back with its contents *)
                  reread := Bytes.to_string (Coro.load ~addr:maddr ~len:4);
                  survived := true)))
      with
      | Ok () -> ()
      | Error e -> failwith e);
  ignore (Sim.run machine.Machine.sim);
  Alcotest.(check (list (pair int string))) "no faults" [] (Fwk.Node.faults node);
  check_bool "survived pressure" true !survived;
  check_bool "pages were reclaimed" true (Fwk.Node.reclaims node > 0);
  Alcotest.(check string) "content re-read after reclaim" "FFFF" !reread

let test_fwk_boot_slower_than_cnk () =
  check_bool "full Linux boot ~250x CNK" true
    (Fwk.Node.boot_cycles_full > 200 * Cnk.Node.boot_cycles);
  check_bool "stripped still ~35x" true
    (Fwk.Node.boot_cycles_stripped > 30 * Cnk.Node.boot_cycles)

let test_fwk_contiguous_degrades_with_churn () =
  let machine = Machine.create ~dims:(1, 1, 1) () in
  let node = Fwk.Node.create machine ~rank:0 () in
  check_bool "fresh: 256MB contiguous fine" true
    (Fwk.Node.try_alloc_contiguous node ~bytes:(256 * mb));
  Fwk.Node.churn node ~allocations:30_000 ~seed:99L;
  check_bool "after churn: 1GB contiguous fails" false
    (Fwk.Node.try_alloc_contiguous node ~bytes:(1024 * mb))

let test_fwk_not_reproducible_across_environments () =
  (* Same program, different noise seeds (= different uncontrolled daemon
     phases): completion cycles differ. CNK's equivalent test shows exact
     equality. *)
  let run seed =
    let machine = Machine.create ~dims:(1, 1, 1) () in
    let node = Fwk.Node.create ~noise_seed:seed machine ~rank:0 ~stripped:true () in
    let finish = ref 0 in
    Fwk.Node.boot node ~on_ready:(fun () ->
        Fwk.Node.on_job_complete node (fun () -> finish := Sim.now machine.Machine.sim);
        match
          Fwk.Node.launch node
            (Job.create ~name:"r"
               (Image.executable ~name:"r" (fun () -> Coro.consume 50_000_000)))
        with
        | Ok () -> ()
        | Error e -> failwith e);
    ignore (Sim.run machine.Machine.sim);
    !finish
  in
  check_bool "timing differs across environments" true (run 1L <> run 2L)

(* ------------------------------------------------------------------ *)

let suite =
  [
    Alcotest.test_case "buddy: alloc/free" `Quick test_buddy_alloc_free;
    Alcotest.test_case "buddy: split/coalesce" `Quick test_buddy_split_and_coalesce;
    Alcotest.test_case "buddy: fragmentation" `Quick test_buddy_fragmentation_metric;
    Alcotest.test_case "buddy: double free" `Quick test_buddy_double_free_detected;
    Alcotest.test_case "noise: quiet ticks" `Quick test_noise_quiet_is_ticks_only;
    Alcotest.test_case "noise: heavy vs light core" `Quick test_noise_heavy_core_noisier;
    Alcotest.test_case "noise: deterministic" `Quick test_noise_deterministic;
    Alcotest.test_case "fwk: same runtime as cnk" `Quick test_fwk_runs_same_runtime;
    Alcotest.test_case "fwk: demand paging" `Quick test_fwk_demand_paging_counts;
    Alcotest.test_case "fwk: tlb pressure" `Quick test_fwk_tlb_pressure_evicts;
    Alcotest.test_case "fwk: noise on fixed work" `Quick test_fwk_noise_varies_identical_work;
    Alcotest.test_case "fwk: preemption interleaves" `Quick test_fwk_preemption_interleaves;
    Alcotest.test_case "fwk: seeded determinism" `Quick test_fwk_same_seed_identical_noise;
    Alcotest.test_case "fwk: overcommit ok" `Quick test_fwk_overcommit_allowed;
    Alcotest.test_case "fwk: mprotect enforced" `Quick test_fwk_mprotect_enforced;
    Alcotest.test_case "fwk: no vtop" `Quick test_fwk_no_vtop;
    Alcotest.test_case "fwk: local io" `Quick test_fwk_local_io;
    Alcotest.test_case "fwk: file mmap demand paged" `Quick test_fwk_file_mmap_demand_paged;
    Alcotest.test_case "fwk: dynlink noise at runtime" `Quick test_fwk_dynlink_noise_at_runtime;
    Alcotest.test_case "fwk: page-cache reclaim" `Quick test_fwk_page_cache_reclaim;
    Alcotest.test_case "fwk: boot cost ratios" `Quick test_fwk_boot_slower_than_cnk;
    Alcotest.test_case "fwk: buddy churn vs contiguous" `Quick
      test_fwk_contiguous_degrades_with_churn;
    Alcotest.test_case "fwk: not reproducible" `Quick test_fwk_not_reproducible_across_environments;
  ]
