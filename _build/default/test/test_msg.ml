(* Tests for the messaging stack: DCMF put/get/eager data integrity and
   latency structure (paper Table I), MPI matching and rendezvous, the
   bandwidth model behind Fig 8, ARMCI blocking semantics, and the
   tree-network allreduce. *)

open Bg_engine
open Bg_kabi
open Bg_msg
open Cnk

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

(* Run [prog rank mpi] on every rank of a fresh cluster. *)
let run_ranks ~dims prog =
  let cluster = Cluster.create ~dims () in
  Cluster.boot_all cluster;
  let fabric = Dcmf.make_fabric (Cluster.machine cluster) in
  let n = Array.length (Cluster.nodes cluster) in
  for r = 0 to n - 1 do
    ignore (Dcmf.attach fabric ~rank:r)
  done;
  let image =
    Image.executable ~name:"msgprog" (fun () ->
        let r = Bg_rt.Libc.rank () in
        prog r (Dcmf.attach fabric ~rank:r))
  in
  Cluster.run_job cluster (Job.create ~name:"msg" image);
  Array.iter
    (fun node ->
      Alcotest.(check (list (pair int string)))
        (Printf.sprintf "no faults on rank %d" (Node.rank node))
        [] (Node.faults node))
    (Cluster.nodes cluster);
  cluster

(* ------------------------------------------------------------------ *)
(* DCMF data integrity *)

let test_put_moves_data () =
  let seen = ref "" in
  ignore
    (run_ranks ~dims:(2, 1, 1) (fun r ctx ->
         if r = 1 then Dcmf.register ctx ~tag:7 ~bytes:32;
         Dcmf.barrier_via_hw ctx;
         if r = 0 then begin
           let h = Dcmf.put ctx ~dst:1 ~tag:7 ~data:(Bytes.of_string "payload!") in
           Dcmf.wait h
         end
         else begin
           (* wait long enough for the put to land, then read the buffer *)
           Coro.consume 10_000;
           seen := Bytes.sub_string (Dcmf.buffer ctx ~tag:7) 0 8
         end));
  Alcotest.(check string) "put landed" "payload!" !seen

let test_get_fetches_data () =
  let got = ref "" in
  ignore
    (run_ranks ~dims:(2, 1, 1) (fun r ctx ->
         if r = 1 then begin
           Dcmf.register ctx ~tag:3 ~bytes:16;
           (* owner fills its exposed buffer via a local put *)
           let h = Dcmf.put ctx ~dst:1 ~tag:3 ~data:(Bytes.of_string "remote-data!") in
           Dcmf.wait h
         end;
         Dcmf.barrier_via_hw ctx;
         if r = 0 then begin
           let h = Dcmf.get ctx ~src:1 ~tag:3 in
           Dcmf.wait h;
           got := Bytes.sub_string (Dcmf.fetched h) 0 12
         end));
  Alcotest.(check string) "get fetched" "remote-data!" !got

let test_eager_inbox () =
  let received = ref [] in
  ignore
    (run_ranks ~dims:(2, 1, 1) (fun r ctx ->
         if r = 0 then begin
           ignore (Dcmf.send_eager ctx ~dst:1 ~tag:5 ~data:(Bytes.of_string "one"));
           ignore (Dcmf.send_eager ctx ~dst:1 ~tag:5 ~data:(Bytes.of_string "two"))
         end
         else begin
           let rec collect n =
             if n < 2 then begin
               match Dcmf.try_recv_eager ctx ~tag:5 with
               | Some (src, data) ->
                 received := (src, Bytes.to_string data) :: !received;
                 collect (n + 1)
               | None ->
                 Coro.consume 500;
                 collect n
             end
           in
           collect 0
         end));
  Alcotest.(check (list (pair int string)))
    "fifo eager delivery" [ (0, "one"); (0, "two") ] (List.rev !received)

(* ------------------------------------------------------------------ *)
(* Table I latency structure *)

let measure_latencies () =
  let lat = Hashtbl.create 8 in
  let record name us = Hashtbl.replace lat name us in
  ignore
    (run_ranks ~dims:(2, 1, 1) (fun r ctx ->
         if r = 1 then begin
           Dcmf.register ctx ~tag:1 ~bytes:64;
           Coro.consume 100
         end
         else begin
           let mpi = Mpi.create ctx in
           let data = Bytes.make 8 'x' in
           let one_way name f =
             let t0 = Coro.rdtsc () in
             let h = f () in
             Dcmf.wait h;
             record name (Cycles.to_us (Dcmf.completion_cycle h - t0));
             (* idle so the fabric drains between measurements *)
             Coro.consume 20_000
           in
           one_way "dcmf_put" (fun () -> Dcmf.put ctx ~dst:1 ~tag:1 ~data);
           one_way "dcmf_get" (fun () -> Dcmf.get ctx ~src:1 ~tag:1);
           one_way "dcmf_eager" (fun () -> Dcmf.send_eager ctx ~dst:1 ~tag:9 ~data);
           (let t0 = Coro.rdtsc () in
            Armci.blocking_put ctx ~dst:1 ~tag:1 ~data;
            record "armci_put" (Cycles.to_us (Coro.rdtsc () - t0)));
           Coro.consume 20_000;
           (let t0 = Coro.rdtsc () in
            ignore (Armci.blocking_get ctx ~src:1 ~tag:1);
            record "armci_get" (Cycles.to_us (Coro.rdtsc () - t0)));
           Coro.consume 20_000;
           (* MPI eager one-way: the eager wire path plus MPI's send-side
              envelope and receive-side matching costs *)
           (let t0 = Coro.rdtsc () in
            Coro.consume Msg_params.mpi_send_overhead;
            let h = Dcmf.send_eager ctx ~dst:1 ~tag:11 ~data in
            Dcmf.wait h;
            record "mpi_eager"
              (Cycles.to_us
                 (Dcmf.completion_cycle h - t0 + Msg_params.mpi_match_overhead)));
           Coro.consume 20_000;
           (let t0 = Coro.rdtsc () in
            Mpi.send_rendezvous mpi ~dst:1 ~tag:3 8;
            record "mpi_rndv" (Cycles.to_us (Coro.rdtsc () - t0)))
         end));
  lat

let test_table1_ordering () =
  let lat = measure_latencies () in
  let get name =
    match Hashtbl.find_opt lat name with
    | Some v -> v
    | None -> Alcotest.failf "missing measurement %s" name
  in
  let put = get "dcmf_put" in
  let eager = get "dcmf_eager" in
  let dget = get "dcmf_get" in
  let aput = get "armci_put" in
  let aget = get "armci_get" in
  let meager = get "mpi_eager" in
  let rndv = get "mpi_rndv" in
  (* the paper's ordering: 0.9 < 1.6 ~ 1.6 < 2.0 < 2.4 < 3.3 < 5.6 *)
  check_bool "put fastest" true (put < eager && put < dget && put < aput);
  check_bool "one-sided dcmf under armci put" true (dget < aput || eager < aput);
  check_bool "armci put under mpi eager" true (aput < meager);
  check_bool "mpi eager under armci get" true (meager < aget);
  check_bool "rendezvous slowest" true (rndv > aget);
  (* rough magnitudes (us) *)
  check_bool "put ~0.9us" true (put > 0.5 && put < 1.3);
  check_bool "eager ~1.6us" true (eager > 1.1 && eager < 2.2);
  check_bool "rndv ~5.6us" true (rndv > 3.5 && rndv < 7.5)

(* ------------------------------------------------------------------ *)
(* MPI semantics *)

let test_mpi_send_recv_matching () =
  let results = ref [] in
  ignore
    (run_ranks ~dims:(2, 1, 1) (fun r ctx ->
         let mpi = Mpi.create ctx in
         if r = 0 then begin
           Mpi.send mpi ~dst:1 ~tag:20 (Bytes.of_string "tag20");
           Mpi.send mpi ~dst:1 ~tag:10 (Bytes.of_string "tag10")
         end
         else begin
           (* receive in the opposite order: matching must pick by tag *)
           let a = Mpi.recv mpi ~src:0 ~tag:10 in
           let b = Mpi.recv mpi ~src:0 ~tag:20 in
           results := [ Bytes.to_string a; Bytes.to_string b ]
         end));
  Alcotest.(check (list string)) "matched by tag" [ "tag10"; "tag20" ] !results

let test_mpi_eager_threshold_enforced () =
  let rejected = ref false in
  ignore
    (run_ranks ~dims:(2, 1, 1) (fun r ctx ->
         if r = 0 then begin
           let mpi = Mpi.create ctx in
           match Mpi.send mpi ~dst:1 ~tag:1 (Bytes.create 4096) with
           | () -> ()
           | exception Invalid_argument _ -> rejected := true
         end));
  check_bool "large eager rejected" true !rejected

(* allreduce needs one shared Coll across ranks; build it outside *)
let test_allreduce_shared () =
  let cluster = Cluster.create ~dims:(4, 1, 1) () in
  Cluster.boot_all cluster;
  let fabric = Dcmf.make_fabric (Cluster.machine cluster) in
  for r = 0 to 3 do
    ignore (Dcmf.attach fabric ~rank:r)
  done;
  let coll = Mpi.Coll.create fabric ~participants:4 in
  let results = Array.make 4 0.0 in
  let image =
    Image.executable ~name:"ar" (fun () ->
        let r = Bg_rt.Libc.rank () in
        let ctx = Dcmf.attach fabric ~rank:r in
        let mpi = Mpi.create ctx in
        Coro.consume (1000 * (r + 1));
        (* straggler skew *)
        results.(r) <- Mpi.Coll.allreduce_sum coll mpi (float_of_int (r + 1)))
  in
  Cluster.run_job cluster (Job.create ~name:"ar" image);
  Array.iteri
    (fun i v -> Alcotest.(check (float 1e-9)) (Printf.sprintf "rank %d sum" i) 10.0 v)
    results;
  check_bool "latency includes straggler wait" true
    (Mpi.Coll.last_latency_cycles coll > 3000)

(* ------------------------------------------------------------------ *)
(* Fig 8 bandwidth model *)

let bandwidth_of ~bytes ~contiguous =
  let cluster = Cluster.create ~dims:(2, 1, 1) () in
  Cluster.boot_all cluster;
  let fabric = Dcmf.make_fabric (Cluster.machine cluster) in
  for r = 0 to 1 do
    ignore (Dcmf.attach fabric ~rank:r)
  done;
  let mbps = ref 0.0 in
  let image =
    Image.executable ~name:"bw" (fun () ->
        let r = Bg_rt.Libc.rank () in
        let ctx = Dcmf.attach fabric ~rank:r in
        if r = 0 then begin
          let t0 = Coro.rdtsc () in
          let h = Dcmf.put_large ctx ~dst:1 ~tag:1 ~bytes ~contiguous in
          Dcmf.wait h;
          let dt = Cycles.to_seconds (Dcmf.completion_cycle h - t0) in
          mbps := float_of_int bytes /. dt /. 1e6
        end)
  in
  Cluster.run_job cluster (Job.create ~name:"bw" image);
  !mbps

let test_bandwidth_saturates () =
  let small = bandwidth_of ~bytes:64 ~contiguous:true in
  let big = bandwidth_of ~bytes:(4 * 1024 * 1024) ~contiguous:true in
  check_bool "grows with size" true (big > 2.0 *. small);
  (* one link direction: 425 MB/s *)
  check_bool "approaches link speed" true (big > 350.0 && big <= 430.0)

(* Aggregate near-neighbor exchange: rank 0 streams to its six torus
   neighbors at once. Contiguous buffers let six DMA streams run at wire
   speed; fragmented buffers serialize on the CPU bounce copy. *)
let aggregate_bandwidth ~contiguous =
  let cluster = Cluster.create ~dims:(4, 4, 4) () in
  Cluster.boot_all cluster;
  let fabric = Dcmf.make_fabric (Cluster.machine cluster) in
  let neighbors = [ 1; 3; 4; 12; 16; 48 ] in
  List.iter (fun r -> ignore (Dcmf.attach fabric ~rank:r)) (0 :: neighbors);
  let bytes = 2 * 1024 * 1024 in
  let mbps = ref 0.0 in
  let image =
    Image.executable ~name:"agg" (fun () ->
        let ctx = Dcmf.attach fabric ~rank:0 in
        let t0 = Coro.rdtsc () in
        let handles =
          List.map
            (fun dst -> Dcmf.put_large ctx ~dst ~tag:1 ~bytes ~contiguous)
            neighbors
        in
        List.iter Dcmf.wait handles;
        let finish =
          List.fold_left (fun acc h -> max acc (Dcmf.completion_cycle h)) 0 handles
        in
        mbps := float_of_int (6 * bytes) /. Cycles.to_seconds (finish - t0) /. 1e6)
  in
  Cluster.run_job cluster ~ranks:[ 0 ] (Job.create ~name:"agg" image);
  !mbps

let test_paged_below_contiguous () =
  let cont = aggregate_bandwidth ~contiguous:true in
  let paged = aggregate_bandwidth ~contiguous:false in
  check_bool "contiguous reaches multi-link speed" true (cont > 2_000.0);
  check_bool "paged capped by the copy" true (paged < 0.6 *. cont)

(* ------------------------------------------------------------------ *)

let test_barrier_synchronizes () =
  let spread = ref max_int in
  let arrivals = Array.make 4 0 in
  ignore
    (run_ranks ~dims:(4, 1, 1) (fun r ctx ->
         Coro.consume (5_000 * (r + 1));
         Dcmf.barrier_via_hw ctx;
         arrivals.(r) <- Coro.rdtsc ()));
  let mn = Array.fold_left min max_int arrivals in
  let mx = Array.fold_left max 0 arrivals in
  spread := mx - mn;
  (* all ranks resume within a couple of spin quanta of each other *)
  check_bool "barrier tight" true (!spread < 3_000)

let test_vector_allreduce_crossover () =
  let cluster = Cluster.create ~dims:(2, 2, 2) () in
  Cluster.boot_all cluster;
  let fabric = Dcmf.make_fabric (Cluster.machine cluster) in
  for r = 0 to 7 do
    ignore (Dcmf.attach fabric ~rank:r)
  done;
  let coll = Mpi.Coll.create fabric ~participants:8 in
  (* timing model: tree wins tiny, torus wins huge, and there is a
     crossover in between *)
  let tree n = Mpi.Coll.estimate_vector_cycles coll Mpi.Coll.Tree ~elements:n in
  let torus n = Mpi.Coll.estimate_vector_cycles coll Mpi.Coll.Torus ~elements:n in
  check_bool "tree wins at 1 element" true (tree 1 < torus 1);
  check_bool "torus wins at 1M elements" true (torus 1_000_000 < tree 1_000_000);
  (* correctness through the event-driven path, both routes *)
  let results = Array.make 8 (0.0, 0.0) in
  let image =
    Image.executable ~name:"arv" (fun () ->
        let r = Bg_rt.Libc.rank () in
        let mpi = Mpi.create (Dcmf.attach fabric ~rank:r) in
        let a = Mpi.Coll.allreduce_vector coll mpi Mpi.Coll.Tree ~elements:4 (float_of_int r) in
        let b =
          Mpi.Coll.allreduce_vector coll mpi Mpi.Coll.Torus ~elements:100_000 (float_of_int r)
        in
        results.(r) <- (a, b))
  in
  Cluster.run_job cluster (Job.create ~name:"arv" image);
  Array.iteri
    (fun i (a, b) ->
      Alcotest.(check (float 1e-9)) (Printf.sprintf "tree sum rank %d" i) 28.0 a;
      Alcotest.(check (float 1e-9)) (Printf.sprintf "torus sum rank %d" i) 28.0 b)
    results

let test_nonblocking_overlap () =
  let overlapped = ref false and payload = ref "" in
  ignore
    (run_ranks ~dims:(2, 1, 1) (fun r ctx ->
         let mpi = Mpi.create ctx in
         if r = 0 then begin
           Coro.consume 5_000;
           Mpi.send mpi ~dst:1 ~tag:5 (Bytes.of_string "deferred")
         end
         else begin
           let req = Mpi.irecv mpi ~src:0 ~tag:5 in
           (* not yet arrived: test must report false and let us compute *)
           overlapped := not (Mpi.test mpi req);
           Coro.consume 2_000;
           payload := Bytes.to_string (Mpi.wait mpi req)
         end));
  check_bool "computation overlapped the receive" true !overlapped;
  Alcotest.(check string) "payload delivered" "deferred" !payload

let test_sendrecv_ring_no_deadlock () =
  (* every rank simultaneously sendrecvs around a 4-ring: blocking sends
     would deadlock; sendrecv must not *)
  let sums = Array.make 4 0 in
  ignore
    (run_ranks ~dims:(4, 1, 1) (fun r ctx ->
         let mpi = Mpi.create ctx in
         let right = (r + 1) mod 4 and left = (r + 3) mod 4 in
         let payload = Bytes.make 8 '\000' in
         Bytes.set_int64_le payload 0 (Int64.of_int (100 + r));
         let got =
           Mpi.sendrecv mpi ~dst:right ~send_tag:9 payload ~src:left ~recv_tag:9
         in
         sums.(r) <- Int64.to_int (Bytes.get_int64_le got 0)));
  Alcotest.(check (list int)) "each got its left neighbor's value"
    [ 103; 100; 101; 102 ] (Array.to_list sums)

let test_halo_checksum_rank_invariant () =
  let run_on ~dims ~ranks =
    let cluster = Cluster.create ~dims () in
    Cluster.boot_all cluster;
    let fabric = Dcmf.make_fabric (Cluster.machine cluster) in
    for r = 0 to ranks - 1 do
      ignore (Dcmf.attach fabric ~rank:r)
    done;
    let entry, collect =
      Bg_apps.Halo.program ~fabric ~cells_per_rank:12 ~iterations:5
        ~compute_cycles_per_cell:50 ()
    in
    Cluster.run_job cluster (Job.create ~name:"halo" (Image.executable ~name:"halo" entry));
    (collect ()).Bg_apps.Halo.checksum
  in
  let reference r = Bg_apps.Halo.reference_checksum ~ranks:r ~cells_per_rank:12 ~iterations:5 in
  check_int "2 ranks match host reference" (reference 2) (run_on ~dims:(2, 1, 1) ~ranks:2);
  check_int "4 ranks match host reference" (reference 4) (run_on ~dims:(4, 1, 1) ~ranks:4)

let test_bcast_and_reduce () =
  let cluster = Cluster.create ~dims:(4, 1, 1) () in
  Cluster.boot_all cluster;
  let fabric = Dcmf.make_fabric (Cluster.machine cluster) in
  for r = 0 to 3 do
    ignore (Dcmf.attach fabric ~rank:r)
  done;
  let coll = Mpi.Coll.create fabric ~participants:4 in
  let got = Array.make 4 "" and reduced = Array.make 4 None in
  let image =
    Image.executable ~name:"bc" (fun () ->
        let r = Bg_rt.Libc.rank () in
        let mpi = Mpi.create (Dcmf.attach fabric ~rank:r) in
        let payload = if r = 2 then Bytes.of_string "from-root-2" else Bytes.empty in
        got.(r) <- Bytes.to_string (Mpi.Coll.bcast coll mpi ~root:2 payload);
        reduced.(r) <- Mpi.Coll.reduce_sum coll mpi ~root:1 (float_of_int ((r + 1) * 10)))
  in
  Cluster.run_job cluster (Job.create ~name:"bc" image);
  Array.iteri
    (fun i s -> Alcotest.(check string) (Printf.sprintf "bcast rank %d" i) "from-root-2" s)
    got;
  Array.iteri
    (fun i v ->
      if i = 1 then Alcotest.(check (option (float 1e-9))) "root has the sum" (Some 100.0) v
      else Alcotest.(check (option (float 1e-9))) "non-root has none" None v)
    reduced

let test_multiple_io_nodes_share_fs () =
  (* 8 compute nodes split across 2 I/O nodes, one shared filesystem *)
  let cluster = Cluster.create ~dims:(8, 1, 1) ~nodes_per_io_node:4 () in
  Cluster.boot_all cluster;
  let image =
    Image.executable ~name:"w8" (fun () ->
        let r = Bg_rt.Libc.rank () in
        let fd =
          Bg_rt.Libc.openf ~flags:{ Sysreq.o_rdwr with Sysreq.creat = true }
            (Printf.sprintf "r%d" r)
        in
        ignore (Bg_rt.Libc.write_string fd (string_of_int r));
        Bg_rt.Libc.close fd)
  in
  Cluster.run_job cluster (Job.create ~name:"w8" image);
  (* distinct CIODs served the two psets *)
  let c0 = Cluster.ciod_for cluster ~rank:0 and c7 = Cluster.ciod_for cluster ~rank:7 in
  check_bool "two io nodes" true (Bg_cio.Ciod.io_node c0 <> Bg_cio.Ciod.io_node c7);
  check_bool "both served traffic" true
    (Bg_cio.Ciod.requests_served c0 > 0 && Bg_cio.Ciod.requests_served c7 > 0);
  (* ...but all files landed on the one shared mount *)
  check_int "8 files on the shared fs" 8
    (List.length (Result.get_ok (Bg_cio.Fs.readdir (Cluster.fs cluster) ~cwd:"/" "/")))

let test_alltoall () =
  let cluster = Cluster.create ~dims:(4, 1, 1) () in
  Cluster.boot_all cluster;
  let fabric = Dcmf.make_fabric (Cluster.machine cluster) in
  for r = 0 to 3 do
    ignore (Dcmf.attach fabric ~rank:r)
  done;
  let coll = Mpi.Coll.create fabric ~participants:4 in
  let got = Array.make 4 [] in
  let t_spent = ref 0 in
  let image =
    Image.executable ~name:"a2a" (fun () ->
        let r = Bg_rt.Libc.rank () in
        let mpi = Mpi.create (Dcmf.attach fabric ~rank:r) in
        let t0 = Coro.rdtsc () in
        got.(r) <- Mpi.Coll.alltoall coll mpi ~bytes_per_pair:65_536 ((r + 1) * 100);
        if r = 0 then t_spent := Coro.rdtsc () - t0)
  in
  Cluster.run_job cluster (Job.create ~name:"a2a" image);
  Array.iteri
    (fun i l ->
      Alcotest.(check (list int))
        (Printf.sprintf "rank %d receives all contributions in rank order" i)
        [ 100; 200; 300; 400 ] l)
    got;
  (* timing tracks the closed form *)
  let expect = Mpi.Coll.alltoall_cycles coll ~bytes_per_pair:65_536 in
  check_bool "took at least the modeled cost" true (!t_spent >= expect);
  check_bool "bandwidth term dominates" true (expect > 100_000)

let suite =
  [
    Alcotest.test_case "coll: alltoall" `Quick test_alltoall;
    Alcotest.test_case "coll: bcast + reduce" `Quick test_bcast_and_reduce;
    Alcotest.test_case "cluster: multiple io nodes" `Quick test_multiple_io_nodes_share_fs;
    Alcotest.test_case "mpi: nonblocking overlap" `Quick test_nonblocking_overlap;
    Alcotest.test_case "mpi: sendrecv ring" `Quick test_sendrecv_ring_no_deadlock;
    Alcotest.test_case "halo: checksum invariant" `Quick test_halo_checksum_rank_invariant;
    Alcotest.test_case "collectives: tree/torus crossover" `Quick
      test_vector_allreduce_crossover;
    Alcotest.test_case "dcmf: put integrity" `Quick test_put_moves_data;
    Alcotest.test_case "dcmf: get integrity" `Quick test_get_fetches_data;
    Alcotest.test_case "dcmf: eager inbox order" `Quick test_eager_inbox;
    Alcotest.test_case "table1: latency ordering" `Quick test_table1_ordering;
    Alcotest.test_case "mpi: tag matching" `Quick test_mpi_send_recv_matching;
    Alcotest.test_case "mpi: eager threshold" `Quick test_mpi_eager_threshold_enforced;
    Alcotest.test_case "mpi: allreduce" `Quick test_allreduce_shared;
    Alcotest.test_case "fig8: bandwidth saturates" `Quick test_bandwidth_saturates;
    Alcotest.test_case "fig8: paged below contiguous" `Quick test_paged_below_contiguous;
    Alcotest.test_case "barrier: synchronizes" `Quick test_barrier_synchronizes;
  ]
