(* Tests for the Bg_rt runtime pieces not already covered end-to-end:
   malloc reuse/coalescing/calloc, condition variables, full libc
   coverage of the function-shipped POSIX suite, and ld.so error paths. *)

open Bg_kabi
open Cnk
module Rt = Bg_rt

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

(* run user code on a fresh 1-node CNK cluster *)
let run_user f =
  let cluster = Cluster.create ~dims:(1, 1, 1) () in
  Cluster.boot_all cluster;
  Cluster.run_job cluster
    (Job.create ~name:"rt" (Image.executable ~name:"rt" (fun () -> f cluster)));
  Alcotest.(check (list (pair int string))) "no faults" []
    (Node.faults (Cluster.node cluster 0));
  cluster

(* ------------------------------------------------------------------ *)
(* malloc *)

let test_malloc_reuses_freed_block () =
  let reused = ref false in
  ignore
    (run_user (fun _ ->
         let a = Rt.Malloc.malloc 256 in
         Rt.Malloc.free a;
         let b = Rt.Malloc.malloc 256 in
         reused := a = b;
         Rt.Malloc.free b));
  check_bool "first-fit reuse" true !reused

let test_malloc_coalesces_neighbors () =
  let ok = ref false in
  ignore
    (run_user (fun _ ->
         let a = Rt.Malloc.malloc 512 in
         let b = Rt.Malloc.malloc 512 in
         let c = Rt.Malloc.malloc 512 in
         (* free in an order that needs coalescing: a, c, then b bridges *)
         Rt.Malloc.free a;
         Rt.Malloc.free c;
         Rt.Malloc.free b;
         (* a 1.5 KB block must now fit where the three were *)
         let d = Rt.Malloc.malloc 1536 in
         ok := d = a;
         Rt.Malloc.free d));
  check_bool "coalesced hole serves a bigger block" true !ok

let test_malloc_distinct_live_blocks () =
  let distinct = ref false in
  ignore
    (run_user (fun _ ->
         let blocks = List.init 50 (fun i -> Rt.Malloc.malloc (16 + (i mod 7 * 48))) in
         let sorted = List.sort compare blocks in
         let rec no_dup = function
           | a :: (b :: _ as rest) -> a <> b && no_dup rest
           | _ -> true
         in
         distinct := no_dup sorted;
         List.iter Rt.Malloc.free blocks));
  check_bool "all live blocks distinct" true !distinct

let test_calloc_zeroes_reused_memory () =
  let ok = ref false in
  ignore
    (run_user (fun _ ->
         let a = Rt.Malloc.malloc 128 in
         Rt.Libc.poke a 0xDEAD;
         Rt.Malloc.free a;
         let b = Rt.Malloc.calloc 128 in
         ok := b = a && Rt.Libc.peek b = 0;
         Rt.Malloc.free b));
  check_bool "calloc zeroes a dirty reused block" true !ok

let test_malloc_free_unknown_rejected () =
  let raised = ref false in
  ignore
    (run_user (fun _ ->
         try Rt.Malloc.free 0x12345678
         with Invalid_argument _ -> raised := true));
  check_bool "bogus free detected" true !raised

let test_malloc_accounting () =
  let live_during = ref 0 and live_after = ref (-1) in
  ignore
    (run_user (fun _ ->
         let a = Rt.Malloc.malloc 1000 in
         let b = Rt.Malloc.malloc (512 * 1024) in
         live_during := Rt.Malloc.allocated_bytes ();
         Rt.Malloc.free a;
         Rt.Malloc.free b;
         live_after := Rt.Malloc.allocated_bytes ()));
  check_bool "live bytes cover both" true (!live_during >= 1000 + (512 * 1024));
  check_int "all freed" 0 !live_after

(* ------------------------------------------------------------------ *)
(* condition variables *)

let test_cond_signal_wakes_waiter () =
  let sequence = ref [] in
  ignore
    (run_user (fun _ ->
         let m = Rt.Pthread.Mutex.create () in
         let c = Rt.Pthread.Cond.create () in
         let ready = Rt.Malloc.malloc 8 in
         Rt.Libc.poke ready 0;
         let consumer =
           Rt.Pthread.create (fun () ->
               Rt.Pthread.Mutex.lock m;
               while Rt.Libc.peek ready = 0 do
                 Rt.Pthread.Cond.wait c m
               done;
               sequence := "consumed" :: !sequence;
               Rt.Pthread.Mutex.unlock m)
         in
         Coro.consume 20_000;
         Rt.Pthread.Mutex.lock m;
         Rt.Libc.poke ready 1;
         sequence := "produced" :: !sequence;
         Rt.Pthread.Cond.signal c;
         Rt.Pthread.Mutex.unlock m;
         Rt.Pthread.join consumer;
         Rt.Pthread.Cond.destroy c;
         Rt.Pthread.Mutex.destroy m));
  Alcotest.(check (list string)) "producer then consumer" [ "produced"; "consumed" ]
    (List.rev !sequence)

let test_cond_broadcast_wakes_all () =
  let woken = ref 0 in
  ignore
    (run_user (fun _ ->
         let m = Rt.Pthread.Mutex.create () in
         let c = Rt.Pthread.Cond.create () in
         let go = Rt.Malloc.malloc 8 in
         Rt.Libc.poke go 0;
         let waiters =
           List.init 3 (fun _ ->
               Rt.Pthread.create (fun () ->
                   Rt.Pthread.Mutex.lock m;
                   while Rt.Libc.peek go = 0 do
                     Rt.Pthread.Cond.wait c m
                   done;
                   Rt.Pthread.Mutex.unlock m;
                   incr woken))
         in
         Coro.consume 30_000;
         Rt.Pthread.Mutex.lock m;
         Rt.Libc.poke go 1;
         Rt.Pthread.Cond.broadcast c;
         Rt.Pthread.Mutex.unlock m;
         List.iter Rt.Pthread.join waiters));
  check_int "all three woken" 3 !woken

(* ------------------------------------------------------------------ *)
(* libc coverage over the function-shipped suite *)

let test_libc_file_suite () =
  let cluster =
    run_user (fun _ ->
        Rt.Libc.mkdir "/data";
        Rt.Libc.chdir "/data";
        Alcotest.(check string) "getcwd" "/data" (Rt.Libc.getcwd ());
        let fd = Rt.Libc.openf ~flags:{ Sysreq.o_rdwr with Sysreq.creat = true } "log" in
        ignore (Rt.Libc.write_string fd "0123456789");
        (* pread/pwrite do not disturb the cursor *)
        ignore (Rt.Libc.pwrite fd (Bytes.of_string "AB") ~offset:2);
        Alcotest.(check string) "pread" "1AB4"
          (Bytes.to_string (Rt.Libc.pread fd ~len:4 ~offset:1));
        check_int "cursor still at end" 10
          (Rt.Libc.lseek fd ~offset:0 ~whence:Sysreq.Seek_cur);
        Rt.Libc.ftruncate fd ~length:4;
        check_int "truncated" 4 (Rt.Libc.fstat fd).Sysreq.st_size;
        let fd2 = Rt.Libc.dup fd in
        check_bool "dup fd distinct" true (fd2 <> fd);
        Rt.Libc.fsync fd;
        Rt.Libc.close fd;
        Rt.Libc.close fd2;
        Rt.Libc.rename ~src:"log" ~dst:"log.old";
        Alcotest.(check (list string)) "readdir" [ "log.old" ] (Rt.Libc.readdir ".");
        check_int "stat via path" 4 (Rt.Libc.stat "log.old").Sysreq.st_size;
        Rt.Libc.unlink "log.old";
        Rt.Libc.chdir "/";
        Rt.Libc.rmdir "/data")
  in
  (* nothing left behind *)
  Alcotest.(check (list string)) "clean tree" []
    (Result.get_ok (Bg_cio.Fs.readdir (Cluster.fs cluster) ~cwd:"/" "/"))

let test_libc_gettimeofday_monotonic () =
  let ok = ref false in
  ignore
    (run_user (fun _ ->
         let t1 = Rt.Libc.gettimeofday_us () in
         Coro.consume 8_500_000 (* 10 ms *);
         let t2 = Rt.Libc.gettimeofday_us () in
         ok := t2 - t1 >= 9_000 && t2 - t1 < 11_000));
  check_bool "clock advanced ~10ms" true !ok

(* ------------------------------------------------------------------ *)
(* ld.so error paths *)

let test_ld_so_missing_library () =
  let errno = ref "" in
  ignore
    (run_user (fun _ ->
         try ignore (Rt.Ld_so.dlopen "/lib/never_installed.so")
         with Sysreq.Syscall_error e -> errno := Errno.to_string e));
  Alcotest.(check string) "dlopen ENOENT" "ENOENT" !errno

let test_ld_so_missing_symbol () =
  let raised = ref false in
  let cluster = Cluster.create ~dims:(1, 1, 1) () in
  Cluster.boot_all cluster;
  let lib = Image.library ~name:"libsmall" [ { Image.symbol_name = "f"; fn = (fun x -> x) } ] in
  let path = Rt.Ld_so.install_library (Cluster.fs cluster) lib in
  let image =
    Image.executable ~name:"dl" (fun () ->
        let h = Rt.Ld_so.dlopen path in
        (try ignore (Rt.Ld_so.dlsym h "does_not_exist" 0) with Not_found -> raised := true);
        Rt.Ld_so.dlclose h)
  in
  Cluster.run_job cluster (Job.create ~name:"dl" image);
  check_bool "dlsym Not_found" true !raised

let test_ld_so_file_matches_declared_size () =
  let sizes = ref (0, 0) in
  let cluster = Cluster.create ~dims:(1, 1, 1) () in
  Cluster.boot_all cluster;
  let lib = Image.library ~name:"libsz" ~text_bytes:(1 lsl 20) [] in
  let path = Rt.Ld_so.install_library (Cluster.fs cluster) lib in
  let image =
    Image.executable ~name:"sz" (fun () ->
        let st = Rt.Libc.stat path in
        sizes := (st.Sysreq.st_size, lib.Image.file_bytes))
  in
  Cluster.run_job cluster (Job.create ~name:"sz" image);
  let on_disk, declared = !sizes in
  check_int "ld.so loads exactly the on-disk bytes" declared on_disk

(* stdout forwarding *)

let test_stdio_forwarding () =
  let cluster = Cluster.create ~dims:(2, 1, 1) () in
  Cluster.boot_all cluster;
  let image =
    Image.executable ~name:"printer" (fun () ->
        let r = Rt.Libc.rank () in
        Rt.Stdio.printf "hello from rank %d\n" r;
        Rt.Stdio.printf "partial...";
        Rt.Stdio.printf " completed %d\n" (r * 2);
        Rt.Stdio.eprintf "warning from %d\n" r;
        Rt.Stdio.printf "tail without newline";
        Rt.Stdio.flush ())
  in
  Cluster.run_job cluster (Job.create ~name:"p" image);
  let fs = Cluster.fs cluster in
  Alcotest.(check string) "rank 0 console"
    "hello from rank 0\npartial... completed 0\ntail without newline"
    (Rt.Stdio.read_console fs ~rank:0);
  Alcotest.(check string) "rank 1 console"
    "hello from rank 1\npartial... completed 2\ntail without newline"
    (Rt.Stdio.read_console fs ~rank:1);
  (* stderr went to its own stream *)
  let err =
    let inode = Result.get_ok (Bg_cio.Fs.resolve fs ~cwd:"/" (Rt.Stdio.stderr_path ~rank:1)) in
    Bytes.to_string (Result.get_ok (Bg_cio.Fs.read fs inode ~offset:0 ~len:100))
  in
  Alcotest.(check string) "stderr separate" "warning from 1\n" err

let test_strace_capture () =
  let cluster = Cluster.create ~dims:(1, 1, 1) () in
  Cluster.boot_all cluster;
  let node = Cluster.node cluster 0 in
  Node.set_strace node true;
  let image =
    Image.executable ~name:"traced" (fun () ->
        let fd = Rt.Libc.openf ~flags:{ Sysreq.o_rdwr with Sysreq.creat = true } "t" in
        ignore (Rt.Libc.write_string fd "abc");
        Rt.Libc.close fd)
  in
  Cluster.run_job cluster (Job.create ~name:"t" image);
  let log = Node.strace_output node in
  let has needle =
    let n = String.length log and m = String.length needle in
    let rec go i = i + m <= n && (String.sub log i m = needle || go (i + 1)) in
    go 0
  in
  check_bool "open traced" true (has {|open("t"|});
  check_bool "write traced" true (has "write(fd=");
  check_bool "close traced" true (has "close(");
  (* tracing off produces nothing *)
  Node.set_strace node false;
  Alcotest.(check string) "off" "" (Node.strace_output node)

let suite =
  [
    Alcotest.test_case "stdio: forwarding" `Quick test_stdio_forwarding;
    Alcotest.test_case "strace: capture" `Quick test_strace_capture;
    Alcotest.test_case "malloc: reuse" `Quick test_malloc_reuses_freed_block;
    Alcotest.test_case "malloc: coalesce" `Quick test_malloc_coalesces_neighbors;
    Alcotest.test_case "malloc: distinct blocks" `Quick test_malloc_distinct_live_blocks;
    Alcotest.test_case "malloc: calloc zeroes" `Quick test_calloc_zeroes_reused_memory;
    Alcotest.test_case "malloc: bogus free" `Quick test_malloc_free_unknown_rejected;
    Alcotest.test_case "malloc: accounting" `Quick test_malloc_accounting;
    Alcotest.test_case "cond: signal" `Quick test_cond_signal_wakes_waiter;
    Alcotest.test_case "cond: broadcast" `Quick test_cond_broadcast_wakes_all;
    Alcotest.test_case "libc: file suite" `Quick test_libc_file_suite;
    Alcotest.test_case "libc: gettimeofday" `Quick test_libc_gettimeofday_monotonic;
    Alcotest.test_case "ld.so: missing library" `Quick test_ld_so_missing_library;
    Alcotest.test_case "ld.so: missing symbol" `Quick test_ld_so_missing_symbol;
    Alcotest.test_case "ld.so: size consistency" `Quick test_ld_so_file_matches_declared_size;
  ]
