(* Property-based suites: a model-checked filesystem (random op sequences
   against a pure reference model), allocator conservation invariants
   (buddy + mmap tracker), and torus timing consistency. *)

open Bg_kabi
module Fs = Bg_cio.Fs

(* ------------------------------------------------------------------ *)
(* Model-based filesystem checking: flat namespace of files under /,
   reference model = association list name -> contents. *)

type fs_op =
  | Create of string * string   (* name, contents *)
  | Append of string * string
  | ReadBack of string
  | Unlink of string
  | RenameTo of string * string

let op_gen =
  let open QCheck.Gen in
  let name = map (fun i -> Printf.sprintf "f%d" i) (0 -- 5) in
  let content = string_size ~gen:(char_range 'a' 'z') (1 -- 20) in
  frequency
    [
      (3, map2 (fun n c -> Create (n, c)) name content);
      (3, map2 (fun n c -> Append (n, c)) name content);
      (3, map (fun n -> ReadBack n) name);
      (2, map (fun n -> Unlink n) name);
      (1, map2 (fun a b -> RenameTo (a, b)) name name);
    ]

let pp_op = function
  | Create (n, c) -> Printf.sprintf "create %s %S" n c
  | Append (n, c) -> Printf.sprintf "append %s %S" n c
  | ReadBack n -> Printf.sprintf "read %s" n
  | Unlink n -> Printf.sprintf "unlink %s" n
  | RenameTo (a, b) -> Printf.sprintf "rename %s %s" a b

(* Apply one op to both systems; return false on observable divergence. *)
let apply_both fs model op =
  let find n = List.assoc_opt n !model in
  match op with
  | Create (n, c) -> (
    match Fs.open_file fs ~cwd:"/" n ~flags:Sysreq.o_create_trunc ~mode:0o644 with
    | Error _ -> false
    | Ok inode -> (
      match Fs.write fs inode ~offset:0 (Bytes.of_string c) with
      | Error _ -> false
      | Ok _ ->
        model := (n, c) :: List.remove_assoc n !model;
        true))
  | Append (n, c) -> (
    match find n with
    | None -> (
      (* appending to a missing file without O_CREAT must fail the same way *)
      match Fs.resolve fs ~cwd:"/" n with Ok _ -> false | Error _ -> true)
    | Some existing -> (
      match Fs.resolve fs ~cwd:"/" n with
      | Error _ -> false
      | Ok inode -> (
        match Fs.write fs inode ~offset:(String.length existing) (Bytes.of_string c) with
        | Error _ -> false
        | Ok _ ->
          model := (n, existing ^ c) :: List.remove_assoc n !model;
          true)))
  | ReadBack n -> (
    match (find n, Fs.resolve fs ~cwd:"/" n) with
    | None, Error Errno.ENOENT -> true
    | None, _ -> false
    | Some expected, Ok inode -> (
      match Fs.read fs inode ~offset:0 ~len:(String.length expected + 10) with
      | Ok b -> Bytes.to_string b = expected
      | Error _ -> false)
    | Some _, Error _ -> false)
  | Unlink n -> (
    match (find n, Fs.unlink fs ~cwd:"/" n) with
    | None, Error Errno.ENOENT -> true
    | None, _ -> false
    | Some _, Ok () ->
      model := List.remove_assoc n !model;
      true
    | Some _, Error _ -> false)
  | RenameTo (a, b) -> (
    match (find a, Fs.rename fs ~cwd:"/" ~src:a ~dst:b) with
    | None, Error _ -> true
    | None, Ok () -> false
    | Some contents, Ok () ->
      model := (b, contents) :: List.remove_assoc b (List.remove_assoc a !model);
      true
    | Some _, Error _ -> false)

let prop_fs_matches_model =
  QCheck.Test.make ~name:"filesystem agrees with a reference model" ~count:300
    (QCheck.make ~print:(fun ops -> String.concat "; " (List.map pp_op ops))
       (QCheck.Gen.list_size (QCheck.Gen.( -- ) 1 40) op_gen))
    (fun ops ->
      let fs = Fs.create () in
      let model = ref [] in
      List.for_all (apply_both fs model) ops)

(* ------------------------------------------------------------------ *)
(* Buddy allocator conservation *)

type buddy_op = Alloc of int | FreeNth of int

let buddy_ops_gen =
  let open QCheck.Gen in
  list_size (1 -- 60)
    (frequency
       [ (3, map (fun o -> Alloc o) (12 -- 18)); (2, map (fun i -> FreeNth i) (0 -- 20)) ])

let prop_buddy_conservation =
  QCheck.Test.make ~name:"buddy: free + live bytes are conserved; full coalesce" ~count:200
    (QCheck.make buddy_ops_gen)
    (fun ops ->
      let total = 1 lsl 22 in
      let b = Bg_fwk.Buddy.create ~bytes:total in
      let live = ref [] in
      List.iter
        (fun op ->
          match op with
          | Alloc order -> (
            match Bg_fwk.Buddy.alloc b ~order with
            | Ok addr -> live := (addr, order) :: !live
            | Error _ -> ())
          | FreeNth i -> (
            match List.nth_opt !live i with
            | Some (addr, order) ->
              Bg_fwk.Buddy.free b ~addr ~order;
              live := List.filteri (fun j _ -> j <> i) !live
            | None -> ()))
        ops;
      let live_bytes = List.fold_left (fun acc (_, o) -> acc + (1 lsl o)) 0 !live in
      let conserved = Bg_fwk.Buddy.free_bytes b + live_bytes = total in
      (* live blocks must be disjoint *)
      let sorted = List.sort compare (List.map (fun (a, o) -> (a, 1 lsl o)) !live) in
      let rec disjoint = function
        | (a, la) :: ((bb, _) :: _ as rest) -> a + la <= bb && disjoint rest
        | _ -> true
      in
      (* free the rest: memory must fully coalesce *)
      List.iter (fun (addr, order) -> Bg_fwk.Buddy.free b ~addr ~order) !live;
      let coalesced = Bg_fwk.Buddy.largest_free_order b = Some 22 in
      conserved && disjoint sorted && coalesced)

(* ------------------------------------------------------------------ *)
(* Mmap tracker invariants under random op sequences *)

type mt_op = Map of int | UnmapNth of int | Grow of int

let mt_ops_gen =
  let open QCheck.Gen in
  list_size (1 -- 50)
    (frequency
       [
         (3, map (fun n -> Map (n * 4096)) (1 -- 600));
         (2, map (fun i -> UnmapNth i) (0 -- 15));
         (1, map (fun n -> Grow (n * 1024)) (1 -- 64));
       ])

let prop_tracker_invariants =
  QCheck.Test.make ~name:"mmap tracker: disjoint, in-range, brk below allocations"
    ~count:200 (QCheck.make mt_ops_gen)
    (fun ops ->
      let mb = 1024 * 1024 in
      let base = 16 * mb and bytes = 128 * mb in
      let t = Cnk.Mmap_tracker.create ~base ~bytes ~main_stack_bytes:(4 * mb) in
      let live = ref [] in
      List.iter
        (fun op ->
          match op with
          | Map len -> (
            match Cnk.Mmap_tracker.mmap t ~length:len with
            | Ok addr -> live := (addr, len) :: !live
            | Error _ -> ())
          | UnmapNth i -> (
            match List.nth_opt !live i with
            | Some (addr, len) ->
              (match Cnk.Mmap_tracker.munmap t ~addr ~length:len with
              | Ok () -> live := List.filteri (fun j _ -> j <> i) !live
              | Error _ -> ())
            | None -> ())
          | Grow delta -> (
            let cur = Cnk.Mmap_tracker.heap_end t in
            match Cnk.Mmap_tracker.brk t (Some (cur + delta)) with
            | Ok _ | Error _ -> ()))
        ops;
      let brk = Cnk.Mmap_tracker.heap_end t in
      let stack_lo = Cnk.Mmap_tracker.main_stack_lo t in
      let in_range (a, l) = a >= base && a + l <= stack_lo in
      let below_brk (a, _) = a >= brk in
      List.for_all in_range !live
      && List.for_all below_brk !live
      && brk >= base
      &&
      let rounded =
        List.sort compare
          (List.map (fun (a, l) -> (a, (l + mb - 1) / mb * mb)) !live)
      in
      let rec disjoint = function
        | (a, la) :: ((b, _) :: _ as rest) -> a + la <= b && disjoint rest
        | _ -> true
      in
      disjoint rounded)

(* ------------------------------------------------------------------ *)
(* Mapping: random job shapes either fit cleanly or fail cleanly *)

let prop_mapping_random_configs =
  QCheck.Test.make ~name:"mapping: any accepted config satisfies the invariants" ~count:150
    QCheck.(
      quad (int_range 1 64)  (* text MB *)
        (int_range 0 64)     (* data MB *)
        (int_range 0 128)    (* shared MB *)
        (int_range 0 2))     (* mode index *)
    (fun (text_mb, data_mb, shared_mb, mode_i) ->
      let mb = 1024 * 1024 in
      let nprocs = [| 1; 2; 4 |].(mode_i) in
      let cfg =
        {
          Cnk.Mapping.default_config with
          Cnk.Mapping.nprocs;
          text_bytes = text_mb * mb;
          data_bytes = data_mb * mb;
          shared_bytes = shared_mb * mb;
        }
      in
      match Cnk.Mapping.compute cfg with
      | Error _ -> true (* clean refusal is always acceptable *)
      | Ok t ->
        t.Cnk.Mapping.entries_per_core <= cfg.Cnk.Mapping.tlb_budget
        && Array.length t.Cnk.Mapping.procs = nprocs
        && Array.for_all
             (fun pm ->
               List.for_all
                 (fun (r : Sysreq.region) ->
                   Bg_hw.Page_size.aligned r.Sysreq.page r.Sysreq.vaddr
                   && Bg_hw.Page_size.aligned r.Sysreq.page r.Sysreq.paddr
                   && r.Sysreq.paddr + r.Sysreq.bytes <= cfg.Cnk.Mapping.dram_bytes)
                 pm.Cnk.Mapping.regions
               && pm.Cnk.Mapping.heap_stack_bytes >= cfg.Cnk.Mapping.main_stack_bytes)
             t.Cnk.Mapping.procs)

(* ------------------------------------------------------------------ *)
(* Scheduler stress: random queues always drain, partitions conserved *)

let prop_scheduler_stress =
  QCheck.Test.make ~name:"scheduler: random job mixes drain; every node runs its job"
    ~count:25
    QCheck.(
      list_of_size Gen.(1 -- 8) (pair (int_range 1 4) (int_range 1 40)))
    (fun jobs ->
      let cluster = Cnk.Cluster.create ~dims:(4, 1, 1) ~seed:5L () in
      Cnk.Cluster.boot_all cluster;
      let s = Bg_control.Scheduler.create ~backfill:true cluster in
      let ran = ref 0 in
      let expected_ran = ref 0 in
      let ids =
        List.mapi
          (fun i (width, work) ->
            expected_ran := !expected_ran + width;
            Bg_control.Scheduler.submit s
              ~shape:(width, 1, 1)
              (Job.create
                 ~name:(Printf.sprintf "j%d" i)
                 (Image.executable ~name:"j" (fun () ->
                      Coro.consume (work * 10_000);
                      incr ran))))
          jobs
      in
      Bg_control.Scheduler.drain s;
      !ran = !expected_ran
      && List.for_all
           (fun id ->
             match Bg_control.Scheduler.state s id with
             | Bg_control.Scheduler.Completed _ -> true
             | _ -> false)
           ids)

(* ------------------------------------------------------------------ *)
(* Torus: estimate equals measured arrival on an idle network *)

let prop_torus_estimate_exact =
  QCheck.Test.make ~name:"torus: contention-free estimate matches the event timing"
    ~count:100
    QCheck.(triple (int_bound 63) (int_bound 63) (int_bound 100_000))
    (fun (src, dst, bytes) ->
      let sim = Bg_engine.Sim.create () in
      let torus = Bg_hw.Torus.create sim ~dims:(4, 4, 4) () in
      let arrived = ref (-1) in
      Bg_hw.Torus.transfer torus ~src ~dst ~bytes
        ~on_arrival:(fun ~arrival_cycle -> arrived := arrival_cycle)
        ();
      ignore (Bg_engine.Sim.run sim);
      !arrived = Bg_hw.Torus.estimate_cycles torus ~src ~dst ~bytes)

(* ------------------------------------------------------------------ *)
(* Proto: request sizes are what the wire is charged for *)

let prop_proto_write_size_linear =
  QCheck.Test.make ~name:"proto: encoded write size = header + payload + framing"
    ~count:100
    QCheck.(int_bound 10_000)
    (fun n ->
      let hdr = { Bg_cio.Proto.rank = 1; pid = 1; tid = 1 } in
      let base =
        Bytes.length
          (Bg_cio.Proto.encode_request hdr (Sysreq.Write { fd = 3; data = Bytes.empty }))
      in
      let full =
        Bytes.length
          (Bg_cio.Proto.encode_request hdr (Sysreq.Write { fd = 3; data = Bytes.create n }))
      in
      full = base + n)

(* ------------------------------------------------------------------ *)
(* Differential kernel testing: the paper's SSIV.A claim is that
   function-shipped calls "produce the same result codes" as local Linux
   execution. Run the same random file-op program on CNK (shipped to
   CIOD) and on the FWK (local VFS) and require identical observable
   reply sequences. *)

type dfo =
  | D_open of string
  | D_write of int * string   (* nth open fd, payload *)
  | D_read of int * int
  | D_seek of int * int
  | D_close of int
  | D_mkdir of string
  | D_unlink of string
  | D_readdir

let dfo_gen =
  let open QCheck.Gen in
  let name = map (fun i -> Printf.sprintf "f%d" i) (0 -- 3) in
  frequency
    [
      (3, map (fun n -> D_open n) name);
      (3, map2 (fun i s -> D_write (i, s)) (0 -- 3) (string_size ~gen:(char_range 'a' 'z') (1 -- 12)));
      (3, map2 (fun i l -> D_read (i, l)) (0 -- 3) (0 -- 20));
      (2, map2 (fun i o -> D_seek (i, o)) (0 -- 3) (0 -- 30));
      (1, map (fun i -> D_close i) (0 -- 3));
      (1, map (fun n -> D_mkdir n) name);
      (1, map (fun n -> D_unlink n) name);
      (1, return D_readdir);
    ]

(* Execute the op list as user code; normalize every reply to a string.
   Fds are tracked positionally so both kernels see identical calls. *)
let run_file_program ops syscall_results () =
  let fds = Array.make 4 (-1) in
  let note r = syscall_results := r :: !syscall_results in
  let norm = function
    | Sysreq.R_unit -> "ok"
    | Sysreq.R_int _ -> "int"  (* fd numbers may differ; arity does not *)
    | Sysreq.R_bytes b -> "bytes:" ^ Bytes.to_string b
    | Sysreq.R_names ns -> "names:" ^ String.concat "," ns
    | Sysreq.R_err e -> "err:" ^ Errno.to_string e
    | _ -> "other"
  in
  List.iter
    (fun op ->
      match op with
      | D_open name ->
        let reply =
          Coro.syscall
            (Sysreq.Open { path = name; flags = { Sysreq.o_rdwr with Sysreq.creat = true }; mode = 0o644 })
        in
        (match reply with
        | Sysreq.R_int fd ->
          let slot = ref (-1) in
          Array.iteri (fun i v -> if !slot < 0 && v < 0 then slot := i else ignore v) fds;
          if !slot >= 0 then fds.(!slot) <- fd
        | _ -> ());
        note (norm reply)
      | D_write (i, s) ->
        note (norm (Coro.syscall (Sysreq.Write { fd = fds.(i); data = Bytes.of_string s })))
      | D_read (i, l) -> note (norm (Coro.syscall (Sysreq.Read { fd = fds.(i); len = l })))
      | D_seek (i, o) ->
        note
          (norm
             (Coro.syscall (Sysreq.Lseek { fd = fds.(i); offset = o; whence = Sysreq.Seek_set })))
      | D_close i ->
        note (norm (Coro.syscall (Sysreq.Close fds.(i))));
        if fds.(i) >= 0 then fds.(i) <- -1
      | D_mkdir name -> note (norm (Coro.syscall (Sysreq.Mkdir { path = name; mode = 0o755 })))
      | D_unlink name -> note (norm (Coro.syscall (Sysreq.Unlink name)))
      | D_readdir -> note (norm (Coro.syscall (Sysreq.Readdir "."))))
    ops

let prop_shipped_matches_local =
  QCheck.Test.make ~name:"function-shipped I/O = local Linux I/O, result for result"
    ~count:60
    (QCheck.make (QCheck.Gen.list_size (QCheck.Gen.( -- ) 1 25) dfo_gen))
    (fun ops ->
      (* CNK: every call crosses the collective network to an ioproxy *)
      let cnk_results = ref [] in
      let cluster = Cnk.Cluster.create ~dims:(1, 1, 1) () in
      Cnk.Cluster.boot_all cluster;
      Cnk.Cluster.run_job cluster
        (Job.create ~name:"d"
           (Image.executable ~name:"d" (run_file_program ops cnk_results)));
      (* FWK: the same ops against the local VFS *)
      let fwk_results = ref [] in
      let machine = Machine.create ~dims:(1, 1, 1) () in
      let node = Bg_fwk.Node.create ~noise_seed:1L machine ~rank:0 ~stripped:true () in
      Bg_fwk.Node.boot node ~on_ready:(fun () ->
          match
            Bg_fwk.Node.launch node
              (Job.create ~name:"d"
                 (Image.executable ~name:"d" (run_file_program ops fwk_results)))
          with
          | Ok () -> ()
          | Error e -> failwith e);
      ignore (Bg_engine.Sim.run machine.Machine.sim);
      !cnk_results = !fwk_results)

(* ------------------------------------------------------------------ *)
(* Chaos: random recoverable faults must not corrupt a computation *)

let prop_chaos_faults_preserve_halo =
  QCheck.Test.make ~name:"halo survives link breaks + parity errors intact" ~count:15
    QCheck.(pair (int_bound 1000) (list_of_size Gen.(0 -- 3) (pair (int_bound 3) (int_bound 5))))
    (fun (seed_base, breaks) ->
      let ranks = 4 in
      let cluster =
        Cnk.Cluster.create ~dims:(ranks, 1, 1) ~seed:(Int64.of_int (seed_base + 1)) ()
      in
      Cnk.Cluster.boot_all cluster;
      let machine = Cnk.Cluster.machine cluster in
      let fabric = Bg_msg.Dcmf.make_fabric machine in
      for r = 0 to ranks - 1 do
        ignore (Bg_msg.Dcmf.attach fabric ~rank:r)
      done;
      (* register parity handlers, then run the halo *)
      let entry, collect =
        Bg_apps.Halo.program ~fabric ~cells_per_rank:8 ~iterations:6
          ~compute_cycles_per_cell:500 ()
      in
      let image =
        Image.executable ~name:"chaos" (fun () ->
            Sysreq.expect_unit
              (Coro.syscall (Sysreq.Sigaction { signo = 7; handler = Some (fun _ -> ()) }));
            entry ())
      in
      (* chaos schedule: break one link direction at a time (reroutable),
         repair it, and fire parity errors *)
      let sim = Cnk.Cluster.sim cluster in
      List.iteri
        (fun i (rank, dir_mod) ->
          let dir = dir_mod mod 2 in
          let at = 2_200_000 + (i * 40_000) in
          ignore
            (Bg_engine.Sim.schedule_at sim at (fun () ->
                 Bg_hw.Torus.set_link_broken machine.Machine.torus ~rank ~dir true));
          ignore
            (Bg_engine.Sim.schedule_at sim (at + 30_000) (fun () ->
                 Bg_hw.Torus.set_link_broken machine.Machine.torus ~rank ~dir false));
          ignore
            (Bg_engine.Sim.schedule_at sim (at + 10_000) (fun () ->
                 ignore
                   (Cnk.Node.inject_l1_parity_error (Cnk.Cluster.node cluster rank)
                      ~core:0))))
        breaks;
      Cnk.Cluster.run_job cluster (Job.create ~name:"chaos" image);
      let r = collect () in
      let expected =
        Bg_apps.Halo.reference_checksum ~ranks ~cells_per_rank:8 ~iterations:6
      in
      let no_fatal =
        Array.for_all (fun n -> Cnk.Node.faults n = []) (Cnk.Cluster.nodes cluster)
      in
      no_fatal && r.Bg_apps.Halo.checksum = expected)

let suite =
  List.map QCheck_alcotest.to_alcotest
    [
      prop_fs_matches_model;
      prop_buddy_conservation;
      prop_tracker_invariants;
      prop_torus_estimate_exact;
      prop_proto_write_size_linear;
      prop_chaos_faults_preserve_halo;
      prop_shipped_matches_local;
      prop_mapping_random_configs;
      prop_scheduler_stress;
    ]
