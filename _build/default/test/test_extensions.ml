(* Tests for the later paper features: L1 parity recovery (§V.B), the L2
   cache-mapping bringup experiment (§III), the FTQ benchmark, and the
   Charm++-style user-level threading workaround (§VII.B). *)

open Bg_kabi
open Cnk

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

(* ------------------------------------------------------------------ *)
(* L1 parity recovery *)

let test_l1_parity_recovery () =
  let cluster = Cluster.create ~dims:(1, 1, 1) () in
  Cluster.boot_all cluster;
  let node = Cluster.node cluster 0 in
  let recovered = ref 0 and finished = ref false in
  let image =
    Image.executable ~name:"gordon-bell" (fun () ->
        (* the application registers an L1-parity (SIGBUS) handler that
           marks the block for recomputation *)
        Sysreq.expect_unit
          (Coro.syscall (Sysreq.Sigaction { signo = 7; handler = Some (fun _ -> incr recovered) }));
        for _block = 1 to 20 do
          Coro.consume 100_000
        done;
        finished := true)
  in
  (match Node.launch node (Job.create ~name:"gb" image) with
  | Ok () -> ()
  | Error e -> failwith e);
  (* the hardware hiccups twice mid-run (the app starts after boot + the
     ~2.1M-cycle image load and computes for 2M cycles) *)
  let sim = Cluster.sim cluster in
  ignore
    (Bg_engine.Sim.schedule_at sim 2_600_000 (fun () ->
         ignore (Node.inject_l1_parity_error node ~core:0)));
  ignore
    (Bg_engine.Sim.schedule_at sim 3_400_000 (fun () ->
         ignore (Node.inject_l1_parity_error node ~core:0)));
  Cluster.run_until_quiet cluster;
  check_bool "application completed" true !finished;
  check_int "both errors recovered in place" 2 !recovered;
  Alcotest.(check (list (pair int string))) "no checkpoint/restart needed" []
    (Node.faults node)

let test_l1_parity_without_handler_kills () =
  let cluster = Cluster.create ~dims:(1, 1, 1) () in
  Cluster.boot_all cluster;
  let node = Cluster.node cluster 0 in
  let image = Image.executable ~name:"naive" (fun () -> Coro.consume 1_000_000) in
  (match Node.launch node (Job.create ~name:"n" image) with
  | Ok () -> ()
  | Error e -> failwith e);
  ignore
    (Bg_engine.Sim.schedule_at (Cluster.sim cluster) 2_600_000 (fun () ->
         ignore (Node.inject_l1_parity_error node ~core:0)));
  Cluster.run_until_quiet cluster;
  match Node.faults node with
  | [ (_, "unhandled signal 7") ] -> ()
  | l -> Alcotest.failf "expected SIGBUS death, got %d faults" (List.length l)

let test_l1_parity_idle_core () =
  let cluster = Cluster.create ~dims:(1, 1, 1) () in
  Cluster.boot_all cluster;
  Cluster.run_until_quiet cluster;
  check_bool "no victim on an idle core" false
    (Node.inject_l1_parity_error (Cluster.node cluster 0) ~core:2)

(* ------------------------------------------------------------------ *)
(* Cache-mapping exploration *)

let test_cache_explore_ranks_mappings () =
  let results =
    Bg_bringup.Cache_explore.sweep
      ~mappings:[ Bg_hw.Cache.Modulo_line; Bg_hw.Cache.Xor_fold; Bg_hw.Cache.Fixed 0 ]
      ()
  in
  check_int "three mappings" 3 (List.length results);
  let get name =
    (List.find (fun r -> r.Bg_bringup.Cache_explore.mapping_name = name) results)
      .Bg_bringup.Cache_explore.imbalance
  in
  let modulo = get "modulo-line" and xor = get "xor-fold" and fixed = get "fixed-bank-0" in
  (* the 1024-byte stride is pathological for modulo, fine for xor-fold *)
  check_bool "xor-fold beats modulo on the bad stride" true (xor < modulo);
  check_bool "fixed mapping is the worst (artificial conflicts)" true (fixed >= modulo);
  check_bool "xor-fold near even" true (xor < 2.0);
  List.iter
    (fun r -> check_bool "accesses recorded" true (r.Bg_bringup.Cache_explore.accesses > 0))
    results

(* ------------------------------------------------------------------ *)
(* FTQ *)

let run_ftq_cnk () =
  let cluster = Cluster.create ~dims:(1, 1, 1) () in
  Cluster.boot_all cluster;
  let entry, collect = Bg_apps.Ftq.program ~windows:100 () in
  Cluster.run_job cluster (Job.create ~name:"ftq" (Image.executable ~name:"ftq" entry));
  collect ()

let test_ftq_flat_on_cnk () =
  let r = run_ftq_cnk () in
  check_int "100 windows" 100 (Array.length r.Bg_apps.Ftq.counts);
  (* every window fits the same work, give or take one unit *)
  check_bool "flat profile" true
    (Bg_apps.Ftq.max_count r - Bg_apps.Ftq.min_count r <= 1);
  check_bool "windows actually filled" true (Bg_apps.Ftq.min_count r > 300)

let test_ftq_dented_by_injection () =
  let cluster = Cluster.create ~dims:(1, 1, 1) () in
  Cluster.boot_all cluster;
  let profile =
    { Bg_noise.Injection.period_cycles = 3_000_000; duration_cycles = 150_000; jitter = 0.4 }
  in
  Bg_noise.Injection.attach (Cluster.node cluster 0) ~profile ~seed:4L
    ~until:(Bg_engine.Sim.now (Cluster.sim cluster) + 2_000_000_000);
  let entry, collect = Bg_apps.Ftq.program ~windows:100 () in
  Cluster.run_job cluster (Job.create ~name:"ftq" (Image.executable ~name:"ftq" entry));
  let r = collect () in
  (* dents: some windows lose a visible chunk of their work *)
  check_bool "noise dents the profile" true (Bg_apps.Ftq.spread_percent r > 5.0)

(* ------------------------------------------------------------------ *)
(* User-level threads (Charm++ workaround) *)

let test_ult_overcommit_on_one_core () =
  (* 100 "threads" on a kernel that refuses overcommit: they multiplex on
     one pthread via the user-mode library, as the paper says Charm++ does *)
  let done_count = ref 0 and interleaved = ref false in
  let cluster = Cluster.create ~dims:(1, 1, 1) () in
  Cluster.boot_all cluster;
  let image =
    Image.executable ~name:"charm" (fun () ->
        let last = ref (-1) in
        let body i () =
          for _ = 1 to 3 do
            Coro.consume 500;
            (* if another ULT ran since our last step, we interleaved *)
            if !last <> i && !last <> -1 then interleaved := true;
            last := i;
            Bg_rt.Ult.yield ()
          done;
          incr done_count
        in
        Bg_rt.Ult.run (List.init 100 body))
  in
  Cluster.run_job cluster (Job.create ~name:"charm" image);
  check_int "all 100 ULTs finished" 100 !done_count;
  check_bool "they interleaved cooperatively" true !interleaved;
  Alcotest.(check (list (pair int string))) "no faults" []
    (Node.faults (Cluster.node cluster 0))

let test_ult_spawn_and_syscalls () =
  let spawned_ran = ref false and fds = ref [] in
  let cluster = Cluster.create ~dims:(1, 1, 1) () in
  Cluster.boot_all cluster;
  let image =
    Image.executable ~name:"ult-io" (fun () ->
        Bg_rt.Ult.run
          [
            (fun () ->
              (* ULTs can make real (function-shipped) syscalls *)
              let fd =
                Bg_rt.Libc.openf ~flags:{ Sysreq.o_rdwr with Sysreq.creat = true } "a.txt"
              in
              fds := fd :: !fds;
              Bg_rt.Ult.spawn (fun () ->
                  spawned_ran := true;
                  let fd2 =
                    Bg_rt.Libc.openf ~flags:{ Sysreq.o_rdwr with Sysreq.creat = true } "b.txt"
                  in
                  fds := fd2 :: !fds;
                  Bg_rt.Libc.close fd2);
              Bg_rt.Ult.yield ();
              Bg_rt.Libc.close fd);
          ])
  in
  Cluster.run_job cluster (Job.create ~name:"ult" image);
  check_bool "spawned ULT ran" true !spawned_ran;
  check_int "both opens went through" 2 (List.length !fds);
  check_bool "distinct fds" true (List.nth !fds 0 <> List.nth !fds 1)

let test_ult_deep_switching () =
  (* 200 ULTs x 50 yields = 10,000 cooperative switches through the nested
     handler: must complete without exhausting the host stack *)
  let finished = ref 0 in
  let cluster = Cluster.create ~dims:(1, 1, 1) () in
  Cluster.boot_all cluster;
  let image =
    Image.executable ~name:"deep" (fun () ->
        Bg_rt.Ult.run
          (List.init 200 (fun _ () ->
               for _ = 1 to 50 do
                 Bg_rt.Ult.yield ()
               done;
               incr finished)))
  in
  Cluster.run_job cluster (Job.create ~name:"deep" image);
  check_int "all completed" 200 !finished;
  Alcotest.(check (list (pair int string))) "no faults" []
    (Node.faults (Cluster.node cluster 0))

let test_ult_outside_scheduler () =
  (* yield outside a scheduler is a harmless no-op; spawn is an error *)
  Bg_rt.Ult.yield ();
  check_int "no scheduler" 0 (Bg_rt.Ult.self_count ());
  check_bool "spawn raises" true
    (try
       Bg_rt.Ult.spawn (fun () -> ());
       false
     with Failure _ -> true)

(* ------------------------------------------------------------------ *)
(* partial / broken hardware (SSIII) *)

let test_runs_with_torus_broken () =
  (* CNK's control flags let it run with major units absent: a
     compute + shipped-I/O job completes with the torus disabled *)
  let cluster = Cluster.create ~dims:(1, 1, 1) () in
  Cluster.boot_all cluster;
  Bg_hw.Torus.set_enabled (Cluster.machine cluster).Machine.torus false;
  let wrote = ref false in
  let image =
    Image.executable ~name:"no-torus" (fun () ->
        Coro.consume 100_000;
        let fd = Bg_rt.Libc.openf ~flags:{ Sysreq.o_rdwr with Sysreq.creat = true } "ok" in
        ignore (Bg_rt.Libc.write_string fd "alive");
        Bg_rt.Libc.close fd;
        wrote := true)
  in
  Cluster.run_job cluster (Job.create ~name:"nt" image);
  check_bool "job survives a dead torus" true !wrote;
  Alcotest.(check (list (pair int string))) "no faults" []
    (Node.faults (Cluster.node cluster 0))

let test_torus_user_sees_broken_unit () =
  (* a messaging app on the same broken chip dies with a contained fault,
     not a wedged machine *)
  let cluster = Cluster.create ~dims:(2, 1, 1) () in
  Cluster.boot_all cluster;
  Bg_hw.Torus.set_enabled (Cluster.machine cluster).Machine.torus false;
  let fabric = Bg_msg.Dcmf.make_fabric (Cluster.machine cluster) in
  ignore (Bg_msg.Dcmf.attach fabric ~rank:0);
  ignore (Bg_msg.Dcmf.attach fabric ~rank:1);
  let image =
    Image.executable ~name:"needs-torus" (fun () ->
        if Bg_rt.Libc.rank () = 0 then begin
          let ctx = Bg_msg.Dcmf.attach fabric ~rank:0 in
          ignore (Bg_msg.Dcmf.put ctx ~dst:1 ~tag:1 ~data:(Bytes.make 8 'x'))
        end)
  in
  Cluster.run_job cluster (Job.create ~name:"bt" image);
  (match Node.faults (Cluster.node cluster 0) with
  | [ (_, reason) ] ->
    let contains_torus =
      let n = String.length reason in
      let rec scan i = i + 5 <= n && (String.sub reason i 5 = "torus" || scan (i + 1)) in
      scan 0
    in
    check_bool "fault names the unit" true contains_torus
  | l -> Alcotest.failf "expected one contained fault, got %d" (List.length l));
  check_bool "other node untouched" true (Node.faults (Cluster.node cluster 1) = [])

let test_openmp_degrades_gracefully () =
  (* ask for 20 threads on a 12-slot node: the region still computes the
     right answer, overflow chunks running on the master *)
  let total = ref 0 in
  let cluster = Cluster.create ~dims:(1, 1, 1) () in
  Cluster.boot_all cluster;
  let image =
    Image.executable ~name:"omp20" (fun () ->
        let acc = Bg_rt.Malloc.malloc 8 in
        Bg_rt.Libc.poke acc 0;
        Bg_rt.Openmp.parallel_for ~num_threads:20 ~lo:0 ~hi:100 (fun ~thread_num:_ i ->
            Coro.consume 100;
            ignore (Coro.fetch_add ~addr:acc i));
        total := Bg_rt.Libc.peek acc)
  in
  Cluster.run_job cluster (Job.create ~name:"omp" image);
  Alcotest.(check int) "sum intact despite refusals" 4950 !total;
  Alcotest.(check (list (pair int string))) "no faults" []
    (Node.faults (Cluster.node cluster 0))

let suite =
  [
    Alcotest.test_case "openmp: graceful degradation" `Quick test_openmp_degrades_gracefully;
    Alcotest.test_case "partial hw: torus off, job runs" `Quick test_runs_with_torus_broken;
    Alcotest.test_case "partial hw: broken unit contained" `Quick
      test_torus_user_sees_broken_unit;
    Alcotest.test_case "l1 parity: handler recovers" `Quick test_l1_parity_recovery;
    Alcotest.test_case "l1 parity: no handler kills" `Quick
      test_l1_parity_without_handler_kills;
    Alcotest.test_case "l1 parity: idle core" `Quick test_l1_parity_idle_core;
    Alcotest.test_case "cache: mapping exploration" `Quick test_cache_explore_ranks_mappings;
    Alcotest.test_case "ftq: flat on cnk" `Quick test_ftq_flat_on_cnk;
    Alcotest.test_case "ftq: dented by injection" `Quick test_ftq_dented_by_injection;
    Alcotest.test_case "ult: 100-way overcommit" `Quick test_ult_overcommit_on_one_core;
    Alcotest.test_case "ult: spawn + real syscalls" `Quick test_ult_spawn_and_syscalls;
    Alcotest.test_case "ult: deep switching" `Quick test_ult_deep_switching;
    Alcotest.test_case "ult: outside scheduler" `Quick test_ult_outside_scheduler;
  ]
