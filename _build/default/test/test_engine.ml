(* Tests for Bg_engine: hashing, RNG determinism, event queue ordering,
   simulator run loop, statistics. *)

open Bg_engine

let check_int = Alcotest.(check int)
let check_float = Alcotest.(check (float 1e-9))

(* ------------------------------------------------------------------ *)
(* Fnv *)

let test_fnv_known () =
  (* FNV-1a of the empty input is the offset basis. *)
  Alcotest.(check string) "empty" "cbf29ce484222325" (Fnv.to_hex Fnv.empty);
  (* Well-known FNV-1a test vector: "a" -> af63dc4c8601ec8c *)
  Alcotest.(check string) "a" "af63dc4c8601ec8c"
    (Fnv.to_hex (Fnv.add_string Fnv.empty "a"))

let test_fnv_order_sensitive () =
  let h1 = Fnv.add_string (Fnv.add_string Fnv.empty "ab") "cd" in
  let h2 = Fnv.add_string (Fnv.add_string Fnv.empty "cd") "ab" in
  Alcotest.(check bool) "order matters" false (Fnv.equal h1 h2)

let test_fnv_int_int64_consistent () =
  let h1 = Fnv.add_int Fnv.empty 12345 in
  let h2 = Fnv.add_int64 Fnv.empty 12345L in
  Alcotest.(check bool) "int matches int64" true (Fnv.equal h1 h2)

(* ------------------------------------------------------------------ *)
(* Rng *)

let test_rng_deterministic () =
  let a = Rng.create 42L and b = Rng.create 42L in
  for _ = 1 to 100 do
    Alcotest.(check int64) "same stream" (Rng.next_int64 a) (Rng.next_int64 b)
  done

let test_rng_split_independent () =
  let parent = Rng.create 7L in
  let c1 = Rng.split parent "alpha" in
  let pre = Rng.next_int64 c1 in
  (* Drawing from the parent must not perturb an already-split child's
     identity: re-splitting gives the same child stream. *)
  ignore (Rng.next_int64 parent);
  let c1' = Rng.split parent "alpha" in
  Alcotest.(check int64) "split is stable" pre (Rng.next_int64 c1')

let test_rng_split_distinct () =
  let parent = Rng.create 7L in
  let a = Rng.next_int64 (Rng.split parent "a") in
  let b = Rng.next_int64 (Rng.split parent "b") in
  Alcotest.(check bool) "labels differ" true (a <> b)

let test_rng_int_bounds () =
  let t = Rng.create 3L in
  for _ = 1 to 1000 do
    let x = Rng.int t 17 in
    Alcotest.(check bool) "in range" true (x >= 0 && x < 17)
  done

let test_rng_float_bounds () =
  let t = Rng.create 4L in
  for _ = 1 to 1000 do
    let x = Rng.float t 2.5 in
    Alcotest.(check bool) "in range" true (x >= 0.0 && x < 2.5)
  done

let test_rng_gaussian_moments () =
  let t = Rng.create 5L in
  let acc = Stats.Online.create () in
  for _ = 1 to 20_000 do
    Stats.Online.add acc (Rng.gaussian t ~mu:10.0 ~sigma:2.0)
  done;
  Alcotest.(check bool) "mean near 10" true
    (Float.abs (Stats.Online.mean acc -. 10.0) < 0.1);
  Alcotest.(check bool) "sigma near 2" true
    (Float.abs (Stats.Online.stddev acc -. 2.0) < 0.1)

let test_rng_exponential_mean () =
  let t = Rng.create 6L in
  let acc = Stats.Online.create () in
  for _ = 1 to 20_000 do
    Stats.Online.add acc (Rng.exponential t ~mean:5.0)
  done;
  Alcotest.(check bool) "mean near 5" true
    (Float.abs (Stats.Online.mean acc -. 5.0) < 0.2)

(* ------------------------------------------------------------------ *)
(* Cycles *)

let test_cycles_roundtrip () =
  check_int "1us" 850 (Cycles.of_us 1.0);
  check_float "us back" 1.0 (Cycles.to_us 850);
  check_int "1s" 850_000_000 (Cycles.of_seconds 1.0)

let test_cycles_pp_units () =
  let s c = Format.asprintf "%a" Cycles.pp c in
  Alcotest.(check string) "ns" "118ns" (s 100);
  Alcotest.(check string) "us" "1.18us" (s 1_000);
  Alcotest.(check string) "ms" "1.18ms" (s 1_000_000);
  Alcotest.(check string) "s" "1.18s" (s 1_000_000_000)

let test_sim_max_events () =
  let sim = Sim.create () in
  let fired = ref 0 in
  for i = 1 to 10 do
    ignore (Sim.schedule_at sim i (fun () -> incr fired))
  done;
  (match Sim.run ~max_events:4 sim with
  | Sim.Reached_limit -> ()
  | _ -> Alcotest.fail "expected limit");
  check_int "only four" 4 !fired;
  ignore (Sim.run sim);
  check_int "rest later" 10 !fired

(* ------------------------------------------------------------------ *)
(* Event_queue *)

let test_queue_time_order () =
  let q = Event_queue.create () in
  ignore (Event_queue.add q ~time:30 "c");
  ignore (Event_queue.add q ~time:10 "a");
  ignore (Event_queue.add q ~time:20 "b");
  let order = List.init 3 (fun _ -> Option.get (Event_queue.pop q)) in
  Alcotest.(check (list (pair int string)))
    "sorted" [ (10, "a"); (20, "b"); (30, "c") ] order

let test_queue_fifo_ties () =
  let q = Event_queue.create () in
  ignore (Event_queue.add q ~time:5 "first");
  ignore (Event_queue.add q ~time:5 "second");
  ignore (Event_queue.add q ~time:5 "third");
  let order = List.init 3 (fun _ -> snd (Option.get (Event_queue.pop q))) in
  Alcotest.(check (list string)) "fifo" [ "first"; "second"; "third" ] order

let test_queue_cancel () =
  let q = Event_queue.create () in
  let h = Event_queue.add q ~time:1 "dead" in
  ignore (Event_queue.add q ~time:2 "live");
  Event_queue.cancel q h;
  Event_queue.cancel q h;
  check_int "one live" 1 (Event_queue.length q);
  Alcotest.(check (option (pair int string))) "live pops" (Some (2, "live"))
    (Event_queue.pop q);
  Alcotest.(check bool) "empty" true (Event_queue.is_empty q)

let test_queue_cancel_after_fire () =
  let q = Event_queue.create () in
  let h = Event_queue.add q ~time:1 "x" in
  ignore (Event_queue.pop q);
  Event_queue.cancel q h;
  (* A later add must not be affected by the stale cancel. *)
  ignore (Event_queue.add q ~time:3 "y");
  check_int "length" 1 (Event_queue.length q)

let test_queue_peek_skips_cancelled () =
  let q = Event_queue.create () in
  let h = Event_queue.add q ~time:1 "dead" in
  ignore (Event_queue.add q ~time:9 "live");
  Event_queue.cancel q h;
  Alcotest.(check (option int)) "peek" (Some 9) (Event_queue.peek_time q)

let prop_queue_sorted =
  QCheck.Test.make ~name:"event_queue pops in nondecreasing time order"
    ~count:200
    QCheck.(list (int_bound 10_000))
    (fun times ->
      let q = Event_queue.create () in
      List.iter (fun t -> ignore (Event_queue.add q ~time:t t)) times;
      let rec drain last acc =
        match Event_queue.pop q with
        | None -> List.rev acc
        | Some (t, _) ->
          if t < last then failwith "out of order";
          drain t (t :: acc)
      in
      let popped = drain 0 [] in
      List.length popped = List.length times)

(* ------------------------------------------------------------------ *)
(* Sim *)

let test_sim_ordering_and_clock () =
  let sim = Sim.create () in
  let log = ref [] in
  ignore (Sim.schedule_at sim 100 (fun () -> log := ("b", Sim.now sim) :: !log));
  ignore (Sim.schedule_at sim 50 (fun () -> log := ("a", Sim.now sim) :: !log));
  (match Sim.run sim with
  | Sim.Completed -> ()
  | _ -> Alcotest.fail "expected completion");
  Alcotest.(check (list (pair string int)))
    "events in order" [ ("a", 50); ("b", 100) ] (List.rev !log);
  check_int "clock at last event" 100 (Sim.now sim)

let test_sim_schedule_from_event () =
  let sim = Sim.create () in
  let fired = ref 0 in
  ignore
    (Sim.schedule_at sim 10 (fun () ->
         ignore (Sim.schedule_in sim 5 (fun () -> fired := Sim.now sim))));
  ignore (Sim.run sim);
  check_int "chained event" 15 !fired

let test_sim_until () =
  let sim = Sim.create () in
  let fired = ref false in
  ignore (Sim.schedule_at sim 1000 (fun () -> fired := true));
  (match Sim.run ~until:500 sim with
  | Sim.Reached_limit -> ()
  | _ -> Alcotest.fail "expected limit");
  Alcotest.(check bool) "not fired" false !fired;
  check_int "clock advanced to limit" 500 (Sim.now sim);
  ignore (Sim.run sim);
  Alcotest.(check bool) "fires later" true !fired

let test_sim_halt () =
  let sim = Sim.create () in
  ignore (Sim.schedule_at sim 1 (fun () -> Sim.halt sim "scan"));
  ignore (Sim.schedule_at sim 2 (fun () -> Alcotest.fail "must not run"));
  match Sim.run sim with
  | Sim.Halted reason -> Alcotest.(check string) "reason" "scan" reason
  | _ -> Alcotest.fail "expected halt"

let test_sim_rng_stream_persistent () =
  let sim = Sim.create ~seed:9L () in
  let a = Rng.next_int64 (Sim.rng sim "noise") in
  let b = Rng.next_int64 (Sim.rng sim "noise") in
  Alcotest.(check bool) "stream advances" true (a <> b)

let test_trace_record_retention () =
  let t = Trace.create ~keep_records:true () in
  Trace.emit t ~cycle:5 ~label:"a" ~value:1L;
  Trace.emit t ~cycle:9 ~label:"b" ~value:2L;
  check_int "count" 2 (Trace.count t);
  check_int "last cycle" 9 (Trace.last_cycle t);
  (match Trace.records t with
  | [ r1; r2 ] ->
    Alcotest.(check string) "order preserved" "a" r1.Trace.label;
    check_int "cycle kept" 9 r2.Trace.cycle
  | _ -> Alcotest.fail "expected two records");
  (* digest matches a record-free trace fed the same events *)
  let t2 = Trace.create () in
  Trace.emit t2 ~cycle:5 ~label:"a" ~value:1L;
  Trace.emit t2 ~cycle:9 ~label:"b" ~value:2L;
  Alcotest.(check bool) "digest independent of retention" true
    (Fnv.equal (Trace.digest t) (Trace.digest t2));
  Alcotest.(check (list (pair int string))) "no records kept by default" []
    (List.map (fun r -> (r.Trace.cycle, r.Trace.label)) (Trace.records t2))

let test_sim_trace_digest_reproducible () =
  let run_once () =
    let sim = Sim.create ~seed:5L () in
    for i = 1 to 50 do
      ignore
        (Sim.schedule_at sim (i * 10) (fun () ->
             Sim.emit sim ~label:"tick" ~value:(Int64.of_int i)))
    done;
    ignore (Sim.run sim);
    Trace.digest (Sim.trace sim)
  in
  Alcotest.(check bool) "identical digests" true
    (Fnv.equal (run_once ()) (run_once ()))

(* ------------------------------------------------------------------ *)
(* Stats *)

let test_stats_summary () =
  let s = Stats.summarize [| 1.0; 2.0; 3.0; 4.0; 5.0 |] in
  check_int "n" 5 s.Stats.n;
  check_float "mean" 3.0 s.Stats.mean;
  check_float "min" 1.0 s.Stats.min;
  check_float "max" 5.0 s.Stats.max;
  check_float "median" 3.0 s.Stats.median;
  check_float "stddev" (sqrt 2.5) s.Stats.stddev

let test_stats_spread () =
  let s = Stats.summarize [| 100.0; 105.0 |] in
  check_float "spread%" 5.0 (Stats.spread_percent s)

let test_stats_spread_zero_min () =
  (* all-zero samples (an idle FTQ window) have no spread, not NaN *)
  check_float "all zero" 0.0 (Stats.spread_percent (Stats.summarize [| 0.0; 0.0; 0.0 |]));
  let s = Stats.summarize [| 0.0; 4.0 |] in
  Alcotest.(check bool) "zero min, nonzero max" true (Stats.spread_percent s = infinity)

let test_trace_iter_matches_records () =
  let t = Trace.create ~keep_records:true () in
  for i = 1 to 5 do
    Trace.emit t ~cycle:(i * 3) ~label:(Printf.sprintf "e%d" i) ~value:(Int64.of_int i)
  done;
  let seen = ref [] in
  Trace.iter t (fun r -> seen := r :: !seen);
  Alcotest.(check bool) "iter visits records oldest-first" true
    (List.rev !seen = Trace.records t);
  (* iter on a record-free trace visits nothing *)
  let bare = Trace.create () in
  Trace.emit bare ~cycle:1 ~label:"x" ~value:0L;
  Trace.iter bare (fun _ -> Alcotest.fail "no records should be retained")

let test_stats_online_matches_batch () =
  let xs = Array.init 1000 (fun i -> sin (float_of_int i)) in
  let s = Stats.summarize xs in
  let o = Stats.Online.create () in
  Array.iter (Stats.Online.add o) xs;
  Alcotest.(check (float 1e-9)) "mean" s.Stats.mean (Stats.Online.mean o);
  Alcotest.(check (float 1e-9)) "stddev" s.Stats.stddev (Stats.Online.stddev o)

let test_stats_histogram () =
  let h = Stats.Histogram.create ~lo:0.0 ~hi:10.0 ~bins:10 in
  List.iter (Stats.Histogram.add h) [ 0.5; 1.5; 1.9; 9.5; -3.0; 42.0 ];
  let counts = Stats.Histogram.counts h in
  check_int "bin0 (incl clamped low)" 2 counts.(0);
  check_int "bin1" 2 counts.(1);
  check_int "bin9 (incl clamped high)" 2 counts.(9);
  check_int "total" 6 (Stats.Histogram.total h)

let prop_percentile_bounds =
  QCheck.Test.make ~name:"percentile stays within min..max" ~count:200
    QCheck.(pair (list_of_size Gen.(1 -- 50) (float_bound_exclusive 100.0)) (float_bound_inclusive 1.0))
    (fun (xs, p) ->
      let arr = Array.of_list xs in
      let v = Stats.percentile arr p in
      let s = Stats.summarize arr in
      v >= s.Stats.min -. 1e-9 && v <= s.Stats.max +. 1e-9)

(* ------------------------------------------------------------------ *)

let qcheck = List.map QCheck_alcotest.to_alcotest [ prop_queue_sorted; prop_percentile_bounds ]

let suite =
  [
    Alcotest.test_case "fnv: known vectors" `Quick test_fnv_known;
    Alcotest.test_case "fnv: order sensitive" `Quick test_fnv_order_sensitive;
    Alcotest.test_case "fnv: int/int64 consistent" `Quick test_fnv_int_int64_consistent;
    Alcotest.test_case "rng: deterministic" `Quick test_rng_deterministic;
    Alcotest.test_case "rng: split stable" `Quick test_rng_split_independent;
    Alcotest.test_case "rng: split labels distinct" `Quick test_rng_split_distinct;
    Alcotest.test_case "rng: int bounds" `Quick test_rng_int_bounds;
    Alcotest.test_case "rng: float bounds" `Quick test_rng_float_bounds;
    Alcotest.test_case "rng: gaussian moments" `Quick test_rng_gaussian_moments;
    Alcotest.test_case "rng: exponential mean" `Quick test_rng_exponential_mean;
    Alcotest.test_case "cycles: conversions" `Quick test_cycles_roundtrip;
    Alcotest.test_case "cycles: pp units" `Quick test_cycles_pp_units;
    Alcotest.test_case "sim: max events" `Quick test_sim_max_events;
    Alcotest.test_case "queue: time order" `Quick test_queue_time_order;
    Alcotest.test_case "queue: fifo on ties" `Quick test_queue_fifo_ties;
    Alcotest.test_case "queue: cancel" `Quick test_queue_cancel;
    Alcotest.test_case "queue: cancel after fire" `Quick test_queue_cancel_after_fire;
    Alcotest.test_case "queue: peek skips cancelled" `Quick test_queue_peek_skips_cancelled;
    Alcotest.test_case "sim: ordering and clock" `Quick test_sim_ordering_and_clock;
    Alcotest.test_case "sim: schedule from event" `Quick test_sim_schedule_from_event;
    Alcotest.test_case "sim: until limit" `Quick test_sim_until;
    Alcotest.test_case "sim: halt" `Quick test_sim_halt;
    Alcotest.test_case "sim: rng stream persistent" `Quick test_sim_rng_stream_persistent;
    Alcotest.test_case "trace: record retention" `Quick test_trace_record_retention;
    Alcotest.test_case "sim: trace digest reproducible" `Quick test_sim_trace_digest_reproducible;
    Alcotest.test_case "stats: summary" `Quick test_stats_summary;
    Alcotest.test_case "stats: spread" `Quick test_stats_spread;
    Alcotest.test_case "stats: spread zero-min guard" `Quick test_stats_spread_zero_min;
    Alcotest.test_case "trace: iter matches records" `Quick test_trace_iter_matches_records;
    Alcotest.test_case "stats: online = batch" `Quick test_stats_online_matches_batch;
    Alcotest.test_case "stats: histogram" `Quick test_stats_histogram;
  ]
  @ qcheck
