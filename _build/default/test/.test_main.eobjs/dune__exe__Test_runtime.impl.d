test/test_runtime.ml: Alcotest Bg_cio Bg_kabi Bg_rt Bytes Cluster Cnk Coro Errno Image Job List Node Result String Sysreq
