test/test_control.ml: Alcotest Bg_bringup Bg_control Bg_engine Bg_hw Bg_kabi Bg_rt Bytes Cnk Coro Gen Image Job List Machine Printf QCheck QCheck_alcotest Result String Sysreq
