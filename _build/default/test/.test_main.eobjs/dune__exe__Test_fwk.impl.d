test/test_fwk.ml: Alcotest Array Bg_cio Bg_engine Bg_fwk Bg_hw Bg_kabi Bg_noise Bg_rt Bytes Cnk Coro Errno Image Job List Machine Result Rng Sim Stats Sysreq
