test/test_extensions.ml: Alcotest Array Bg_apps Bg_bringup Bg_engine Bg_hw Bg_kabi Bg_msg Bg_noise Bg_rt Bytes Cluster Cnk Coro Image Job List Machine Node String Sysreq
