test/test_hw.ml: Alcotest Barrier_net Bg_engine Bg_hw Bytes Cache Chip Clock_stop Collective_net Dac Dram Fault Float Fnv Gen List Memory Page_size Params QCheck QCheck_alcotest Sim String Tlb Torus
