test/test_experiments.ml: Alcotest Bg_apps Bg_bringup Bg_caps Bg_engine Bg_kabi Bg_noise Bg_rt Cnk Coro Float Fnv Format List Sim String
