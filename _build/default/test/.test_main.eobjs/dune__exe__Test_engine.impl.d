test/test_engine.ml: Alcotest Array Bg_engine Cycles Event_queue Float Fnv Format Gen Int64 List Option Printf QCheck QCheck_alcotest Rng Sim Stats Trace
