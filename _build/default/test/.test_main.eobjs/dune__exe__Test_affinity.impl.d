test/test_affinity.ml: Alcotest Array Bg_kabi Bg_rt Cluster Cnk Coro Errno Image Job List Mapping Node Sysreq
