test/test_msg.ml: Alcotest Armci Array Bg_apps Bg_cio Bg_engine Bg_kabi Bg_msg Bg_rt Bytes Cluster Cnk Coro Cycles Dcmf Hashtbl Image Int64 Job List Mpi Msg_params Node Printf Result Sysreq
