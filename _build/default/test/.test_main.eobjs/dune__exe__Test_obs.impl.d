test/test_obs.ml: Alcotest Array Bg_apps Bg_engine Bg_kabi Bg_obs Cnk Fnv Image Job List Machine Printf Result Sim Stats String Trace
