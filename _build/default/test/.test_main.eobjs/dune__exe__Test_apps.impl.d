test/test_apps.ml: Alcotest Array Bg_apps Bg_cio Bg_engine Bg_kabi Bg_msg Bg_rt Bytes Cluster Cnk Coro Float Fun Image Job List Machine Node Option Result Stats String
