test/test_cio.ml: Alcotest Bg_cio Bg_engine Bg_hw Bg_kabi Bytes Ciod Errno Fs Ioproxy List Machine Printf Proto QCheck QCheck_alcotest Sim Sysreq
