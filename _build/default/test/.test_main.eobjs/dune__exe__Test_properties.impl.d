test/test_properties.ml: Array Bg_apps Bg_cio Bg_control Bg_engine Bg_fwk Bg_hw Bg_kabi Bg_msg Bytes Cnk Coro Errno Gen Image Int64 Job List Machine Printf QCheck QCheck_alcotest String Sysreq
