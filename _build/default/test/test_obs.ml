(* Tests for the observability layer: span rings, metrics registry,
   exporters — and the invariant the whole design hangs on: turning
   collection on must not perturb the simulated machine. *)

open Bg_engine
open Bg_kabi
module Obs = Bg_obs.Obs
module Export = Bg_obs.Export

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

(* ------------------------------------------------------------------ *)
(* Span rings *)

let test_ring_wraparound () =
  let o = Obs.create ~ring_capacity:4 ~enabled:true () in
  for i = 0 to 9 do
    Obs.span_record o ~cat:"t" ~name:(Printf.sprintf "s%d" i) ~rank:0 ~core:0
      ~start:(i * 10)
      ~finish:((i * 10) + 5)
  done;
  check_int "all recordings counted" 10 (Obs.span_count o);
  check_int "overwritten accounted" 6 (Obs.dropped_spans o);
  let spans = Obs.spans o in
  check_int "capacity retained" 4 (List.length spans);
  (match spans with
  | first :: _ -> check_int "oldest survivor is s6" 60 first.Obs.start
  | [] -> Alcotest.fail "no spans retained");
  let starts = List.map (fun s -> s.Obs.start) spans in
  check_bool "oldest first" true (starts = List.sort compare starts)

let test_nested_span_balance () =
  let o = Obs.create ~enabled:true () in
  let outer = Obs.span_begin o ~cat:"k" ~name:"outer" ~rank:1 ~core:2 ~now:100 in
  let inner = Obs.span_begin o ~cat:"k" ~name:"inner" ~rank:1 ~core:2 ~now:110 in
  check_int "two open" 2 (Obs.open_count o);
  Obs.span_end o inner ~now:120;
  Obs.span_end o outer ~now:150;
  check_int "balanced" 0 (Obs.open_count o);
  (match Obs.spans o with
  | [ a; b ] ->
    Alcotest.(check string) "outer first (by start)" "outer" a.Obs.name;
    check_int "outer at depth 0" 0 a.Obs.depth;
    check_int "inner at depth 1" 1 b.Obs.depth;
    check_int "inner finish kept" 120 b.Obs.finish
  | l -> Alcotest.fail (Printf.sprintf "expected 2 spans, got %d" (List.length l)));
  (* ending an already-ended handle must be a no-op *)
  Obs.span_end o inner ~now:999;
  check_int "double end ignored" 2 (Obs.span_count o)

let test_disabled_is_noop () =
  let o = Obs.create () in
  let h = Obs.span_begin o ~cat:"x" ~name:"n" ~rank:0 ~core:0 ~now:1 in
  check_bool "null handle" true (h = Obs.null_handle);
  Obs.span_end o h ~now:2;
  Obs.incr o ~subsystem:"x" ~name:"c" ();
  Obs.observe_cycles o ~subsystem:"x" ~name:"t" 5;
  check_int "no spans" 0 (Obs.span_count o);
  check_int "no metrics" 0 (List.length (Obs.snapshot o));
  check_bool "digest untouched" true (Fnv.equal (Obs.digest o) Fnv.empty)

(* ------------------------------------------------------------------ *)
(* Metrics *)

let test_timer_single_sample () =
  let o = Obs.create ~enabled:true () in
  Obs.observe_cycles o ~subsystem:"s" ~name:"lat" 42;
  match Obs.timer_stats o ~subsystem:"s" ~name:"lat" () with
  | None -> Alcotest.fail "timer missing"
  | Some st ->
    check_int "one sample" 1 (Stats.Online.n st);
    Alcotest.(check (float 1e-9)) "mean=min=max" 42.0 (Stats.Online.mean st);
    Alcotest.(check (float 1e-9)) "min" 42.0 (Stats.Online.min st);
    Alcotest.(check (float 1e-9)) "max" 42.0 (Stats.Online.max st)

let test_timer_histogram_clamps () =
  let o = Obs.create ~enabled:true () in
  let feed = Obs.observe_cycles o ~hi:100.0 ~bins:10 ~subsystem:"s" ~name:"lat" in
  feed 0;
  (* below range and far above range must clamp into the edge bins *)
  feed 1_000_000;
  feed 99;
  match Obs.timer_histogram o ~subsystem:"s" ~name:"lat" () with
  | None -> Alcotest.fail "histogram missing"
  | Some h ->
    let counts = Stats.Histogram.counts h in
    check_int "all samples binned" 3 (Stats.Histogram.total h);
    check_int "first bin" 1 counts.(0);
    check_int "last bin holds clamp + 99" 2 counts.(Array.length counts - 1)

let test_counters_and_snapshot_order () =
  let o = Obs.create ~enabled:true () in
  Obs.incr o ~rank:1 ~core:0 ~subsystem:"syscall" ~name:"write" ();
  Obs.incr o ~rank:0 ~core:0 ~subsystem:"syscall" ~name:"write" ~by:3 ();
  Obs.incr o ~rank:0 ~core:0 ~subsystem:"syscall" ~name:"write" ();
  Obs.set_gauge o ~rank:0 ~subsystem:"tlb" ~name:"entries" 64;
  check_int "per-scope" 4 (Obs.counter_value o ~rank:0 ~core:0 ~subsystem:"syscall" ~name:"write" ());
  check_int "summed over scopes" 5 (Obs.counter_total o ~subsystem:"syscall" ~name:"write");
  let keys = List.map (fun m -> m.Obs.key) (Obs.snapshot o) in
  check_bool "snapshot deterministically sorted" true
    (keys = List.sort compare keys)

(* ------------------------------------------------------------------ *)
(* Determinism: the acceptance criterion of the whole layer *)

let fwq_run ~obs_on =
  let cluster = Cnk.Cluster.create ~dims:(1, 1, 1) ~seed:3L () in
  let machine = Cnk.Cluster.machine cluster in
  if obs_on then Obs.set_enabled (Machine.obs machine) true;
  Cnk.Cluster.boot_all cluster;
  let entry, _ = Bg_apps.Fwq.program ~samples:150 ~threads:4 () in
  Cnk.Cluster.run_job cluster
    (Job.create ~name:"fwq" (Image.executable ~name:"fwq" entry));
  (Trace.digest (Sim.trace (Cnk.Cluster.sim cluster)), Machine.obs machine)

let test_sim_digest_unperturbed () =
  let off, _ = fwq_run ~obs_on:false in
  let on_, obs = fwq_run ~obs_on:true in
  check_bool "sim trace digest identical with obs on vs off" true
    (Fnv.equal off on_);
  check_bool "and the run actually collected something" true
    (Obs.span_count obs > 0)

let test_obs_digest_reproducible () =
  let _, a = fwq_run ~obs_on:true in
  let _, b = fwq_run ~obs_on:true in
  Alcotest.(check string) "span digest reproducible"
    (Fnv.to_hex (Obs.digest a))
    (Fnv.to_hex (Obs.digest b));
  check_bool "digest covers spans" false (Fnv.equal (Obs.digest a) Fnv.empty)

(* ------------------------------------------------------------------ *)
(* Exporters *)

let test_chrome_trace_valid_json () =
  let _, obs = fwq_run ~obs_on:true in
  let json = Export.chrome_trace obs in
  (match Export.validate_json json with
  | Ok () -> ()
  | Error e -> Alcotest.fail ("emitted invalid JSON: " ^ e));
  let cats = List.sort_uniq compare (List.map (fun s -> s.Obs.cat) (Obs.spans obs)) in
  List.iter
    (fun c -> check_bool ("category " ^ c) true (List.mem c cats))
    [ "syscall"; "cio"; "tlb" ]

let test_json_validator_rejects () =
  check_bool "garbage" true (Result.is_error (Export.validate_json "{"));
  check_bool "trailing" true (Result.is_error (Export.validate_json "{} x"));
  check_bool "bare word" true (Result.is_error (Export.validate_json "nope"));
  check_bool "unterminated string" true
    (Result.is_error (Export.validate_json "{\"a\": \"b}"));
  check_bool "valid nested" true
    (Result.is_ok (Export.validate_json "{\"a\":[1,2.5e3,true,null,\"s\\n\"]}"))

let test_csv_exports () =
  let _, obs = fwq_run ~obs_on:true in
  let metrics = Export.metrics_csv obs in
  let spans = Export.spans_csv obs in
  check_bool "metrics header" true
    (String.length metrics > 0
    && String.sub metrics 0 9 = "subsystem");
  check_bool "spans header" true
    (String.length spans > 0 && String.sub spans 0 3 = "cat");
  check_int "one line per span + header"
    (List.length (Obs.spans obs) + 1)
    (List.length (String.split_on_char '\n' (String.trim spans)))

let suite =
  [
    Alcotest.test_case "span ring: wraparound" `Quick test_ring_wraparound;
    Alcotest.test_case "spans: nested balance" `Quick test_nested_span_balance;
    Alcotest.test_case "disabled collector is a no-op" `Quick test_disabled_is_noop;
    Alcotest.test_case "timer: single sample" `Quick test_timer_single_sample;
    Alcotest.test_case "timer histogram: clamping" `Quick test_timer_histogram_clamps;
    Alcotest.test_case "counters + snapshot order" `Quick test_counters_and_snapshot_order;
    Alcotest.test_case "sim digest unperturbed by obs" `Quick test_sim_digest_unperturbed;
    Alcotest.test_case "obs digest reproducible" `Quick test_obs_digest_reproducible;
    Alcotest.test_case "chrome trace is valid JSON" `Quick test_chrome_trace_valid_json;
    Alcotest.test_case "json validator rejects junk" `Quick test_json_validator_rejects;
    Alcotest.test_case "csv exports" `Quick test_csv_exports;
  ]
