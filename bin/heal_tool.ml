(* heal_tool — drive the self-healing control plane through a compound
   fault campaign and prove closed-loop recovery (paper §V.B, §VI).

     dune exec bin/heal_tool.exe -- --seed 1

   A loaded queue (dozens of checkpointing batch jobs plus backfill
   filler) runs on an 8-node machine with two spare nodes held in
   reserve, a reliable function-ship transport, the machine health
   service, and a {!Bg_resilience.Policy} engine closing the loop from
   RAS/HEALTH events back to the scheduler. Two scripted fault bursts
   land node deaths, link severs and fatal CIOD crashes in the same
   window; the policy substitutes spares, restarts daemons within
   budget, drains and rebuilds the pset that blows its budget, walks the
   machine Healthy -> Degraded -> Critical and back, and paces every job
   retry with deterministic backoff.

   The tool asserts the end state: every batch job completes with final
   state byte-identical to a fault-free twin run (and to the host-side
   mirror), at least one restart resumed from a committed checkpoint
   (strictly fewer steps replayed than a scratch restart), a submit
   offered while Critical is refused while a later one is accepted, and
   spares/drain/rebuild all actually fired. It reports MTTR p50/p99 and
   checkpoint-restart savings, and prints digest lines (policy decision
   timeline, sim trace, scheduler state) that `make heal-smoke` compares
   across two same-seed runs. *)

open Cmdliner
module Obs = Bg_obs.Obs
module Health = Bg_obs.Health
module Res = Bg_resilience
module Ctl = Bg_control
module Fnv = Bg_engine.Fnv
module Sim = Bg_engine.Sim

let dims = (4, 2, 1) (* 8 nodes; two psets of 4 *)
let spares = [ 6; 7 ]
let batch_jobs = 20
let filler_jobs = 4
let step_cycles = 40_000

(* Job lengths are staggered (16..28 compute steps) so launch waves
   desynchronize: image load alone gates thread start by ~2.1M cycles,
   and identical jobs would keep every wave in the same phase — a burst
   could only ever land mid-load, where there is nothing to restore. *)
let steps_of i = 16 + (i mod 7 * 2)
let burst1 = 3_000_000
let burst2 = 7_500_000

let policy_config =
  {
    Res.Policy.retry_backoff_base = 20_000;
    retry_backoff_mult = 2;
    retry_backoff_cap = 160_000;
    spare_substitution = true;
    ciod_restart_budget = 2;
    ciod_restart_backoff = 30_000;
    ciod_crash_window = 2_000_000;
    pset_rebuild_after = 400_000;
    degraded_after = 3;
    critical_after = 5;
    recovery_cooldown = 1_000_000;
    shape_cap_degraded = Some (1, 1, 1);
  }

let spec ~name ~steps =
  {
    Res.Ckpt.name;
    steps;
    step_cycles;
    state_bytes = 8 * 1024;
    ckpt_every = 5;
    full_every = 2;
    strategy = Res.Ckpt.Parity_inplace;
  }

type batch = {
  jid : Ctl.Scheduler.job_id;
  spec : Res.Ckpt.spec;
  shape : int * int * int;
  collect : unit -> Res.Ckpt.outcome list;
}

type report = {
  makespan : int;
  completed : (int * string) list; (* (jid, state-digest hex) per batch job *)
  restarts_total : int;
  restored_steps : int; (* steps recovered from committed checkpoints *)
  scratch_steps : int; (* steps a scratch restart would have replayed *)
  mttr_p50 : float;
  mttr_p99 : float;
  substitutions : int;
  ciod_restarts : int;
  drains : int;
  rebuilds : int;
  shed : int;
  rejected : int;
  transitions : int;
  alerts : int;
  offer_refused : bool;
  offer_accepted : bool;
  timeline : (int * string) list;
  policy_digest : string;
  sim_digest : string;
  sched_digest : string;
}

let scenario ~seed ~faults =
  let cluster =
    Cnk.Cluster.create ~dims ~seed ~nodes_per_io_node:4
      ~cio:Bg_cio.Reliable.default_on ()
  in
  let machine = Cnk.Cluster.machine cluster in
  let sim = Cnk.Cluster.sim cluster in
  let obs = Machine.obs machine in
  Obs.set_enabled obs true;
  ignore
    (Machine.attach_health
       ~rules:
         [
           (match
              Health.parse_rule "node_deaths: resilience.deaths_handled delta >= 1 warn"
            with
           | Ok r -> r
           | Error e -> failwith e);
         ]
       machine);
  Cnk.Cluster.boot_all cluster;
  let fabric = Bg_msg.Dcmf.make_fabric machine in
  let sched = Ctl.Scheduler.create ~backfill:true cluster in
  List.iter
    (fun rank -> Ctl.Partition.set_spare (Ctl.Scheduler.partition sched) ~rank true)
    spares;
  let inj = Res.Injector.attach cluster in
  let policy = Res.Policy.attach ~config:policy_config sched in
  (* the loaded queue: checkpointing batch jobs in two shapes... *)
  let batches =
    List.init batch_jobs (fun i ->
        let shape = if i mod 3 = 0 then (2, 1, 1) else (1, 1, 1) in
        let spec = spec ~name:(Printf.sprintf "heal%02d" i) ~steps:(steps_of i) in
        let factory, collect = Res.Ckpt.job_factory ~fabric spec in
        let jid = Ctl.Scheduler.submit_factory sched ~restart_limit:4 ~shape factory in
        { jid; spec; shape; collect })
  in
  (* ...plus opportunistic backfill filler, first to go when degraded *)
  let filler_ids =
    List.init filler_jobs (fun i ->
        Ctl.Scheduler.submit_factory sched ~cls:Ctl.Scheduler.Backfill_class
          ~shape:(1, 1, 1) (fun ~ranks:_ ->
            Job.create
              ~name:(Printf.sprintf "filler%d" i)
              (Image.executable
                 ~name:(Printf.sprintf "filler%d" i)
                 (fun () -> Coro.consume (20 * step_cycles)))))
  in
  (* the compound-fault campaign: two bursts of correlated faults *)
  if faults then begin
    let at cycle f = ignore (Sim.schedule_at sim cycle f) in
    let inject e = Res.Injector.inject_now inj e in
    at burst1 (fun () ->
        inject (Res.Fault_event.Node_death { rank = 1 });
        inject (Res.Fault_event.Link_failure { rank = 0; dir = 0 });
        inject (Res.Fault_event.Ciod_crash { io_node = 0; fatal = true }));
    at burst2 (fun () ->
        inject (Res.Fault_event.Node_death { rank = 5 });
        inject (Res.Fault_event.Link_failure { rank = 4; dir = 1 });
        inject (Res.Fault_event.Ciod_crash { io_node = 1; fatal = true }));
    at (burst2 + 120_000) (fun () ->
        inject (Res.Fault_event.Ciod_crash { io_node = 1; fatal = true }));
    at (burst2 + 240_000) (fun () ->
        (* third fatal inside the window blows the restart budget *)
        inject (Res.Fault_event.Ciod_crash { io_node = 1; fatal = true }))
  end;
  (* admission control probes: one submit offered while the burst should
     have the machine Critical, one after it has recovered *)
  let offer_refused = ref false and offer_accepted = ref false in
  let late_spec = spec ~name:"heal_late" ~steps:16 in
  let late = ref None in
  if faults then begin
    ignore
      (Sim.schedule_at sim
         (burst2 + 300_000)
         (fun () ->
           match
             Ctl.Scheduler.offer_factory sched ~shape:(1, 1, 1) (fun ~ranks:_ ->
                 Job.create ~name:"refused" (Image.executable ~name:"refused" ignore))
           with
           | Error `Admission_closed -> offer_refused := true
           | Ok _ -> ()));
    ignore
      (Sim.schedule_at sim
         (burst2 + 2_500_000)
         (fun () ->
           let factory, collect = Res.Ckpt.job_factory ~fabric late_spec in
           match
             Ctl.Scheduler.offer_factory sched ~restart_limit:2 ~shape:(1, 1, 1) factory
           with
           | Ok jid -> (
             offer_accepted := true;
             late := Some (jid, collect))
           | Error `Admission_closed -> ()))
  end;
  Ctl.Scheduler.drain sched;
  (* every batch job must have completed, with state matching the
     host-side mirror — recovery that loses or corrupts work shows up
     right here as a digest split or a Failed state *)
  let completed =
    List.map
      (fun b ->
        (match Ctl.Scheduler.state sched b.jid with
        | Ctl.Scheduler.Completed _ -> ()
        | _ -> failwith (Printf.sprintf "heal_tool: job %d did not complete" b.jid));
        let outcomes = b.collect () in
        let sx, sy, sz = b.shape in
        if List.length outcomes <> sx * sy * sz then
          failwith (Printf.sprintf "heal_tool: job %d outcome count" b.jid);
        List.iter
          (fun o ->
            if
              not
                (Fnv.equal o.Res.Ckpt.state_digest
                   (Res.Ckpt.expected_digest b.spec
                      ~rank_index:o.Res.Ckpt.rank_index))
            then
              failwith
                (Printf.sprintf
                   "heal_tool: job %d rank %d state diverged (final_step=%d \
                    restored=%d restarts=%d machine_rank=%d)"
                   b.jid o.Res.Ckpt.rank_index o.Res.Ckpt.final_step
                   o.Res.Ckpt.restored_step
                   (Ctl.Scheduler.restarts sched b.jid)
                   o.Res.Ckpt.machine_rank))
          outcomes;
        let digest =
          List.fold_left
            (fun acc o -> Fnv.add_int64 acc o.Res.Ckpt.state_digest)
            Fnv.empty outcomes
        in
        (b.jid, Fnv.to_hex digest))
      batches
  in
  (match !late with
  | None -> ()
  | Some (jid, collect) -> (
    (match Ctl.Scheduler.state sched jid with
    | Ctl.Scheduler.Completed _ -> ()
    | _ -> failwith "heal_tool: late-admitted job did not complete");
    match collect () with
    | [ o ]
      when Fnv.equal o.Res.Ckpt.state_digest
             (Res.Ckpt.expected_digest late_spec ~rank_index:0) ->
      ()
    | _ -> failwith "heal_tool: late-admitted job state diverged"));
  let restarts_total =
    List.fold_left (fun acc b -> acc + Ctl.Scheduler.restarts sched b.jid) 0 batches
  in
  let restored_steps, scratch_steps =
    List.fold_left
      (fun (got, scratch) b ->
        if Ctl.Scheduler.restarts sched b.jid = 0 then (got, scratch)
        else
          List.fold_left
            (fun (g, s) o -> (g + o.Res.Ckpt.restored_step, s + b.spec.Res.Ckpt.steps))
            (got, scratch) (b.collect ()))
      (0, 0) batches
  in
  let mttr_p50, mttr_p99 =
    match
      Obs.timer_histogram obs ~subsystem:"scheduler" ~name:"recovery_latency_cycles" ()
    with
    | None -> (0., 0.)
    | Some h ->
      ( Bg_engine.Stats.Histogram.percentile h 0.5,
        Bg_engine.Stats.Histogram.percentile h 0.99 )
  in
  let sched_digest =
    let b = Buffer.create 1024 in
    Ctl.Scheduler.capture sched b;
    Fnv.to_hex (Fnv.add_bytes Fnv.empty (Buffer.to_bytes b))
  in
  ignore filler_ids;
  {
    makespan = Sim.now sim;
    completed;
    restarts_total;
    restored_steps;
    scratch_steps;
    mttr_p50;
    mttr_p99;
    substitutions = Res.Recovery.substitutions (Res.Policy.recovery policy);
    ciod_restarts = Res.Policy.ciod_restarts policy;
    drains = Res.Policy.psets_drained policy;
    rebuilds = Res.Policy.psets_rebuilt policy;
    shed = Res.Policy.jobs_shed policy;
    rejected = Ctl.Scheduler.rejected_count sched;
    transitions = Res.Policy.transitions policy;
    alerts = Res.Recovery.alerts_seen (Res.Policy.recovery policy);
    offer_refused = !offer_refused;
    offer_accepted = !offer_accepted;
    timeline = Res.Policy.timeline policy;
    policy_digest = Fnv.to_hex (Res.Policy.timeline_digest policy);
    sim_digest = Fnv.to_hex (Bg_engine.Trace.digest (Sim.trace sim));
    sched_digest;
  }

let require cond msg = if not cond then failwith ("heal_tool: " ^ msg)

let run seed timeline_csv quiet =
  let chaos = scenario ~seed ~faults:true in
  let calm = scenario ~seed ~faults:false in
  (* the acceptance claim: recovery is invisible in the application's
     output — chaos-run state digests match the fault-free twin job for
     job (and both match the host mirror, checked inside scenario) *)
  List.iter2
    (fun (jid, d) (jid', d') ->
      require (jid = jid' && d = d') (Printf.sprintf "job %d diverged from twin" jid))
    chaos.completed calm.completed;
  require (calm.restarts_total = 0) "fault-free twin restarted a job";
  require (chaos.restarts_total > 0) "no job ever restarted";
  require (chaos.restored_steps > 0) "no restart resumed from a checkpoint";
  require
    (chaos.restored_steps < chaos.scratch_steps)
    "checkpoint restart replayed as much as scratch";
  require (chaos.substitutions = 2) "expected both spares spent";
  require (chaos.ciod_restarts >= 2) "CIOD restart budget never used";
  require (chaos.drains = 1) "the over-budget pset was not drained";
  require (chaos.rebuilds = 1) "the drained pset was not rebuilt";
  require (chaos.shed > 0) "no backfill shed on degradation";
  require chaos.offer_refused "submit during Critical was not refused";
  require chaos.offer_accepted "submit after recovery was not accepted";
  require (chaos.rejected >= 1) "rejected_count did not record the refusal";
  require (chaos.alerts > 0) "health alert never reached the policy";
  require (chaos.transitions >= 4) "health state never walked the tiers";
  if not quiet then begin
    Printf.printf "chaos: makespan=%d restarts=%d mttr_p50=%.0f mttr_p99=%.0f\n"
      chaos.makespan chaos.restarts_total chaos.mttr_p50 chaos.mttr_p99;
    Printf.printf
      "chaos: restored_steps=%d scratch_steps=%d saved=%d substitutions=%d\n"
      chaos.restored_steps chaos.scratch_steps
      (chaos.scratch_steps - chaos.restored_steps)
      chaos.substitutions;
    Printf.printf
      "chaos: ciod_restarts=%d drains=%d rebuilds=%d shed=%d rejected=%d \
       transitions=%d alerts=%d\n"
      chaos.ciod_restarts chaos.drains chaos.rebuilds chaos.shed chaos.rejected
      chaos.transitions chaos.alerts;
    Printf.printf "calm:  makespan=%d (fault-free twin)\n" calm.makespan;
    List.iter
      (fun (cycle, line) -> Printf.printf "  [%d] %s\n" cycle line)
      chaos.timeline
  end;
  (match timeline_csv with
  | None -> ()
  | Some path ->
    let oc = open_out path in
    output_string oc "cycle,action\n";
    List.iter
      (fun (cycle, line) -> Printf.fprintf oc "%d,%s\n" cycle line)
      chaos.timeline;
    close_out oc;
    Printf.printf "wrote %s (%d rows)\n%!" path (List.length chaos.timeline));
  Printf.printf "policy digest: %s\n" chaos.policy_digest;
  Printf.printf "sim digest: %s %s\n" chaos.sim_digest calm.sim_digest;
  Printf.printf "sched digest: %s %s\n" chaos.sched_digest calm.sched_digest;
  let combined =
    List.fold_left
      (fun acc s -> Fnv.add_string acc s)
      Fnv.empty
      [
        chaos.policy_digest;
        chaos.sim_digest;
        calm.sim_digest;
        chaos.sched_digest;
        calm.sched_digest;
      ]
  in
  Printf.printf "combined digest: %s\n" (Fnv.to_hex combined)

let cmd =
  let seed = Arg.(value & opt int64 1L & info [ "seed" ] ~doc:"Simulation seed.") in
  let timeline_csv =
    Arg.(
      value
      & opt (some string) None
      & info [ "timeline-csv" ] ~doc:"Write the policy decision timeline as CSV.")
  in
  let quiet =
    Arg.(value & flag & info [ "quiet"; "q" ] ~doc:"Only print the digest lines.")
  in
  Cmd.v
    (Cmd.info "heal_tool"
       ~doc:"Chaos-test the self-healing control plane under compound faults")
    Term.(const run $ seed $ timeline_csv $ quiet)

let () = exit (Cmd.eval cmd)
