(* resilience_tool — sweep fault rate x checkpoint interval x recovery
   strategy and print the checkpoint-interval tradeoff curve (paper SSV.B).

     dune exec bin/resilience_tool.exe -- --seed 1 --csv /tmp/resilience.csv

   Each cell runs the coordinated checkpoint/restart workload on a
   one-node CNK machine under a Poisson stream of L1 parity faults:
   CNK-style recovery notes the parity signal and redoes the step in
   place, while the FWK-style stand-in dies and rolls back to the last
   committed checkpoint. The CSV reports makespan, checkpoint bytes,
   restarts, in-place redos and lost work, so plotting makespan against
   ckpt_every shows the classic optimum: checkpoint too often and the
   barriers dominate; too rarely and each rollback repeats a long tail.

   Every run prints its sim trace digest, and the tool ends with a
   combined digest over the whole sweep — two runs with the same seed
   must print identical digest lines (`make resilience-smoke` checks
   exactly that). *)

open Cmdliner
module Obs = Bg_obs.Obs
module Res = Bg_resilience
module Ctl = Bg_control
module Fnv = Bg_engine.Fnv

type cell = {
  strategy : Res.Ckpt.strategy;
  parity_mean : float; (* 0. = fault-free baseline *)
  ckpt_every : int;
}

type row = {
  cell : cell;
  makespan : int;
  ckpt_bytes : int;
  restarts : int;
  redos : int;
  work_lost : int; (* steps executed beyond the ideal count *)
  digest : string;
}

let strategy_name = function
  | Res.Ckpt.Parity_inplace -> "cnk-parity"
  | Res.Ckpt.Rollback -> "fwk-rollback"

let steps = 30
let step_cycles = 100_000

let run_cell ~seed cell =
  let cluster = Cnk.Cluster.create ~dims:(1, 1, 1) ~seed () in
  let machine = Cnk.Cluster.machine cluster in
  let obs = Machine.obs machine in
  Obs.set_enabled obs true;
  Cnk.Cluster.boot_all cluster;
  let fabric = Bg_msg.Dcmf.make_fabric machine in
  let sched = Ctl.Scheduler.create cluster in
  let _inj =
    Res.Injector.attach
      ~config:
        { Res.Injector.default with Res.Injector.parity_mean = cell.parity_mean }
      cluster
  in
  ignore (Res.Recovery.attach sched);
  let spec =
    {
      Res.Ckpt.name = "sweep";
      steps;
      step_cycles;
      state_bytes = 64 * 1024;
      ckpt_every = cell.ckpt_every;
      full_every = 4;
      strategy = cell.strategy;
    }
  in
  let factory, outcomes = Res.Ckpt.job_factory ~fabric spec in
  let jid = Ctl.Scheduler.submit_factory sched ~restart_limit:50 ~shape:(1, 1, 1) factory in
  Ctl.Scheduler.drain sched;
  let makespan =
    match Ctl.Scheduler.state sched jid with
    | Ctl.Scheduler.Completed c | Ctl.Scheduler.Failed c -> c
    | _ -> failwith "resilience_tool: job neither completed nor failed"
  in
  let outcomes = outcomes () in
  (match outcomes with
  | [ o ] when Fnv.equal o.Res.Ckpt.state_digest (Res.Ckpt.expected_digest spec ~rank_index:0)
    -> ()
  | [ _ ] -> failwith "resilience_tool: recovered state diverged from the host mirror"
  | _ -> failwith "resilience_tool: job did not produce a final state");
  let counter name = Obs.counter_total obs ~subsystem:"resilience" ~name in
  {
    cell;
    makespan;
    ckpt_bytes = counter "ckpt_bytes";
    restarts = Ctl.Scheduler.restarts sched jid;
    redos = List.fold_left (fun a o -> a + o.Res.Ckpt.parity_redos) 0 outcomes;
    work_lost = counter "steps_executed" - steps;
    digest = Fnv.to_hex (Bg_engine.Trace.digest (Bg_engine.Sim.trace (Cnk.Cluster.sim cluster)));
  }

let header = "strategy,parity_mean,ckpt_every,makespan,ckpt_bytes,restarts,redos,work_lost"

let to_csv r =
  Printf.sprintf "%s,%.0f,%d,%d,%d,%d,%d,%d"
    (strategy_name r.cell.strategy)
    r.cell.parity_mean r.cell.ckpt_every r.makespan r.ckpt_bytes r.restarts r.redos
    r.work_lost

let sweep ~seed =
  let cells =
    List.concat_map
      (fun strategy ->
        List.concat_map
          (fun parity_mean ->
            List.map
              (fun ckpt_every -> { strategy; parity_mean; ckpt_every })
              [ 1; 2; 5; 10 ])
          [ 0.; 1_500_000.; 700_000. ])
      [ Res.Ckpt.Parity_inplace; Res.Ckpt.Rollback ]
  in
  List.map (fun c -> run_cell ~seed c) cells

let run seed csv quiet =
  let rows = sweep ~seed in
  let combined =
    List.fold_left
      (fun acc r -> Fnv.add_bytes acc (Bytes.of_string r.digest))
      Fnv.empty rows
  in
  if not quiet then begin
    print_endline header;
    List.iter (fun r -> print_endline (to_csv r)) rows;
    List.iter
      (fun r ->
        Printf.printf "run digest: %s %.0f %d %s\n"
          (strategy_name r.cell.strategy)
          r.cell.parity_mean r.cell.ckpt_every r.digest)
      rows
  end;
  (match csv with
  | None -> ()
  | Some path ->
    let oc = open_out path in
    output_string oc (header ^ "\n");
    List.iter (fun r -> output_string oc (to_csv r ^ "\n")) rows;
    close_out oc;
    Printf.printf "wrote %s (%d rows)\n%!" path (List.length rows));
  (* The acceptance claim: wherever a fault actually forced a rollback,
     in-place parity recovery finishes the same workload sooner. *)
  let faulty = List.filter (fun r -> r.cell.parity_mean > 0.) rows in
  let checked = ref 0 in
  List.iter
    (fun r ->
      match r.cell.strategy with
      | Res.Ckpt.Rollback -> ()
      | Res.Ckpt.Parity_inplace ->
        let twin =
          List.find
            (fun q ->
              q.cell.strategy = Res.Ckpt.Rollback
              && q.cell.parity_mean = r.cell.parity_mean
              && q.cell.ckpt_every = r.cell.ckpt_every)
            faulty
        in
        if twin.restarts > 0 then begin
          incr checked;
          if r.makespan >= twin.makespan then
            failwith
              (Printf.sprintf
                 "resilience_tool: parity did not beat rollback at mean=%.0f every=%d \
                  (%d >= %d)"
                 r.cell.parity_mean r.cell.ckpt_every r.makespan twin.makespan)
        end)
    faulty;
  if !checked = 0 then
    failwith "resilience_tool: no sweep cell forced a rollback; raise the fault rate";
  Printf.printf "combined digest: %s\n" (Fnv.to_hex combined)

let cmd =
  let seed = Arg.(value & opt int64 1L & info [ "seed" ] ~doc:"Fault-injection seed.") in
  let csv =
    Arg.(
      value & opt (some string) None & info [ "csv" ] ~doc:"Write the sweep as CSV.")
  in
  let quiet =
    Arg.(value & flag & info [ "quiet"; "q" ] ~doc:"Only print the digest lines.")
  in
  Cmd.v
    (Cmd.info "resilience_tool"
       ~doc:"Sweep fault rate x checkpoint interval and print the tradeoff curve")
    Term.(const run $ seed $ csv $ quiet)

let () = exit (Cmd.eval cmd)
