(* health_tool — drive the machine health service through a seeded chaos
   scenario and show what an operator would see (paper §VI: the control
   system's RAS database and the queries that find sick hardware).

     dune exec bin/health_tool.exe -- --seed 1 --postmortem /tmp/pm.json

   The scenario: a 4-node machine (two psets) runs per-rank I/O jobs
   over the reliable function-ship transport while the collective tree
   drops 20% of frames; mid-run, the I/O daemon of pset 1 suffers a
   fatal crash. The health service samples windowed rollups of every
   metric, alert rules watch the retransmit rate per node, and the
   flight recorder captures a postmortem bundle when the fatal fault
   lands in the RAS database.

   The tool asserts the paper-level claims — at least one alert fired,
   the postmortem is RFC 8259-valid JSON naming the failing io_node and
   the implicated series — and prints digest lines that two same-seed
   runs must reproduce bit-identically (`make health-smoke`). *)

open Cmdliner
module Obs = Bg_obs.Obs
module Ts = Bg_obs.Timeseries
module Rasdb = Bg_obs.Rasdb
module Health = Bg_obs.Health
module Export = Bg_obs.Export
module Res = Bg_resilience
module Net = Bg_hw.Collective_net
module Fnv = Bg_engine.Fnv
module Sim = Bg_engine.Sim

let ranks = 4
let chunk_bytes = 2048
let chunks = 8
let window = 100_000
let crash_cycle = 2_600_000
let crashed_io_node = 1

let workload () =
  let rank = Bg_rt.Libc.rank () in
  let fd =
    Bg_rt.Libc.openf
      ~flags:{ Sysreq.o_rdwr with Sysreq.creat = true; trunc = true }
      (Printf.sprintf "/health-rank-%02d.dat" rank)
  in
  for chunk = 0 to chunks - 1 do
    let payload = Bytes.make chunk_bytes (Char.chr (97 + ((rank + chunk) mod 26))) in
    if Bg_rt.Libc.write fd payload <> chunk_bytes then
      failwith "health_tool: short write";
    Bg_rt.Libc.fsync fd
  done;
  Bg_rt.Libc.close fd

let rules =
  List.map
    (fun s ->
      match Health.parse_rule s with
      | Ok r -> r
      | Error e -> failwith ("health_tool: bad rule: " ^ e))
    [
      (* Per-node retransmit rate (events per million cycles): the
         operator's "which pset is sick". *)
      "retransmit_rate: cio.retransmits rate >= 10 warn";
      (* Any error on the RAS stream trips the machine-level pager. *)
      "ras_errors: ras.error value >= 1 error";
      (* Quiet on this scenario; present so the heat table shows the
         whole rule set, firing or not. *)
      "dma_stall: dma.inject_stalls value > 0 warn";
      "span_loss: obs.dropped_spans delta > 0 info";
    ]

let run seed postmortem_path quiet =
  let cluster =
    Cnk.Cluster.create ~seed ~dims:(2, 2, 1) ~nodes_per_io_node:2
      ~cio:Bg_cio.Reliable.default_on ()
  in
  let machine = Cnk.Cluster.machine cluster in
  Obs.set_enabled (Machine.obs machine) true;
  Bg_obs.Causal.set_enabled (Machine.causal machine) true;
  Cnk.Cluster.boot_all cluster;
  Net.set_fault_config machine.Machine.collective
    { Net.drop_rate = 0.2; corrupt_rate = 0.02; dup_rate = 0.05; jitter_max = 200 };
  let sched = Bg_control.Scheduler.create cluster in
  let recovery = Res.Recovery.attach sched in
  (* Attach the health service after Recovery: machine RAS subscribers
     run newest-first, so the database records a fatal fault (and the
     flight recorder captures its bundle) before Recovery's escalation
     floods the stream with the gang-kill's own events. *)
  let h =
    Machine.attach_health ~window
      ~recorder:{ Health.default_recorder with Health.max_reports = 12 }
      ~rules machine
  in
  let injector = Res.Injector.attach cluster in
  ignore
    (Sim.schedule_in (Cnk.Cluster.sim cluster) crash_cycle (fun () ->
         Res.Injector.inject_now injector
           (Res.Fault_event.Ciod_crash { io_node = crashed_io_node; fatal = true })));
  for _ = 1 to 2 do
    ignore
      (Bg_control.Scheduler.submit_factory sched ~restart_limit:2 ~shape:(2, 1, 1)
         (fun ~ranks:_ ->
           Job.create ~name:"health-io"
             (Image.executable ~name:"health-io" workload)))
  done;
  Bg_control.Scheduler.drain sched;

  let obs = Machine.obs machine in
  let db = h.Machine.h_db and ts = h.Machine.h_ts and svc = h.Machine.h_svc in
  let counter rank name =
    Obs.counter_value obs ~rank ~subsystem:"cio" ~name ()
  in
  if not quiet then begin
    Printf.printf "machine health — seed %Ld, %d windows of %d cycles\n\n"
      seed (Ts.windows_sampled ts) window;
    (* Per-node heat table: the counters an operator scans first. *)
    Printf.printf "%4s %12s %6s %10s %10s %8s\n" "rank" "ship_reqs" "eio"
      "retransmit" "ras_evts" "alerts";
    for rank = 0 to ranks - 1 do
      let alerts_here =
        List.length (List.filter (fun (a : Health.alert) -> a.Health.rank = rank)
                       (Health.alerts svc))
      in
      Printf.printf "%4d %12d %6d %10d %10d %8d\n" rank
        (counter rank "ship_requests") (counter rank "eio")
        (counter rank "retransmits")
        (Rasdb.rank_count db rank)
        alerts_here
    done;
    Printf.printf "\nras database: %d records (%d info / %d warn / %d error), \
                   components:" (Rasdb.count db)
      (Rasdb.severity_count db Rasdb.Info)
      (Rasdb.severity_count db Rasdb.Warn)
      (Rasdb.severity_count db Rasdb.Error);
    List.iter
      (fun c -> Printf.printf " %s=%d" c (Rasdb.component_count db c))
      (Rasdb.components db);
    print_newline ();
    Printf.printf "error rate in the last 10 windows: %d\n"
      (Rasdb.rate db ~severity:Rasdb.Error ~window:(10 * window)
         ~now:(Sim.now (Cnk.Cluster.sim cluster)) ());
    Printf.printf "\nalert log (%d fired):\n" (Health.alert_count svc);
    List.iter
      (fun (a : Health.alert) ->
        Printf.printf "  [w%03d @%10d] %-5s %-18s %s rank=%d value=%.1f thr=%.1f\n"
          a.Health.window a.Health.at
          (Rasdb.severity_name a.Health.severity)
          a.Health.rule a.Health.series a.Health.rank a.Health.value
          a.Health.threshold)
      (Health.alerts svc);
    Printf.printf "\nflight recorder: %d bundle(s), %d suppressed\n"
      (List.length (Health.reports svc))
      (Health.captures_suppressed svc);
    List.iter
      (fun (label, json) ->
        Printf.printf "  %-24s %d bytes\n" label (String.length json))
      (Health.reports svc)
  end;

  (* --- acceptance claims ------------------------------------------- *)
  if Health.alert_count svc = 0 then
    failwith "health_tool: chaos scenario fired no alerts";
  if Res.Recovery.alerts_seen recovery = 0 then
    failwith "health_tool: Recovery consumed no HEALTH alert events";
  let label, bundle =
    match
      List.find_opt (fun (l, _) -> l = "fault:ciod_crash") (Health.reports svc)
    with
    | Some r -> r
    | None -> failwith "health_tool: no postmortem captured for the ciod crash"
  in
  (* Dump before asserting: a failing run still leaves the bundle on
     disk for inspection. *)
  (match postmortem_path with
  | None -> ()
  | Some path ->
    let oc = open_out path in
    output_string oc bundle;
    close_out oc;
    Printf.printf "\nwrote %s (%s, %d bytes)\n" path label (String.length bundle));
  (match Export.validate_json bundle with
  | Ok () -> ()
  | Error e -> failwith ("health_tool: postmortem is not valid JSON: " ^ e));
  let contains sub =
    let n = String.length sub and m = String.length bundle in
    let rec at i = i + n <= m && (String.sub bundle i n = sub || at (i + 1)) in
    at 0
  in
  if not (contains (Printf.sprintf "io=%d" crashed_io_node)) then
    failwith "health_tool: postmortem does not name the failing io_node";
  if not (contains "\"subsystem\":\"cio\"" && contains "\"retransmits\"") then
    failwith "health_tool: postmortem lacks the implicated cio series";

  (* Digest lines: two same-seed runs must reproduce these exactly. *)
  Printf.printf "health digest: %s\n" (Fnv.to_hex (Health.digest svc));
  Printf.printf "sim digest: %s\n"
    (Fnv.to_hex
       (Bg_engine.Trace.digest (Bg_engine.Sim.trace (Cnk.Cluster.sim cluster))));
  Printf.printf "health_tool OK\n"

let cmd =
  let seed = Arg.(value & opt int64 1L & info [ "seed" ] ~doc:"Scenario seed.") in
  let postmortem =
    Arg.(
      value
      & opt (some string) None
      & info [ "postmortem" ] ~doc:"Write the ciod-crash postmortem bundle here.")
  in
  let quiet =
    Arg.(value & flag & info [ "quiet"; "q" ] ~doc:"Only print the digest lines.")
  in
  Cmd.v
    (Cmd.info "health_tool"
       ~doc:
         "Seeded chaos scenario through the machine health service: per-node \
          heat table, alert log, and a deterministic postmortem bundle")
    Term.(const run $ seed $ postmortem $ quiet)

let () = exit (Cmd.eval cmd)
