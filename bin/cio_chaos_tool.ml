(* cio_chaos_tool — sweep collective-network fault rates (and CIOD
   crashes) against the reliable function-ship transport and prove the
   application never notices (paper §IV.A, §VI).

     dune exec bin/cio_chaos_tool.exe -- --seed 1 --csv /tmp/chaos.csv

   Each cell boots a 4-node machine (two psets) with the CRC-framed
   retransmission protocol enabled, turns on a drop/corrupt/duplicate
   fault model in the collective tree — plus, in the crash cells, a
   Poisson stream of CIOD crash/restart events — and runs a per-rank
   write-then-verify workload. The acceptance claim is end-to-end
   reliability: every cell's application-visible file bytes must hash
   identically to the fault-free cell's, no request may surface EIO, and
   the faulty cells must actually have exercised the machinery (drops,
   retransmissions, replayed duplicates).

   Every run prints its sim trace digest, and the tool ends with a
   combined digest over the whole sweep — two runs with the same seed
   must print identical digest lines (`make cio-chaos-smoke` checks
   exactly that). *)

open Cmdliner
module Obs = Bg_obs.Obs
module Res = Bg_resilience
module Net = Bg_hw.Collective_net
module Fnv = Bg_engine.Fnv

type cell = { drop : float; corrupt : float; ciod_crash_mean : float }

type row = {
  cell : cell;
  makespan : int;
  drops : int;
  corruptions : int;
  duplicates : int;
  retransmits : int;
  dups_replayed : int;
  crashes : int;
  eio : int;
  file_digest : string;  (** FNV over every rank's file bytes *)
  digest : string;  (** sim trace digest *)
}

let chunk_bytes = 2048
let chunks = 6

let file_path rank = Printf.sprintf "/chaos-rank-%02d.dat" rank

let expected_content rank =
  let b = Buffer.create (chunk_bytes * chunks) in
  for chunk = 0 to chunks - 1 do
    Buffer.add_bytes b (Bytes.make chunk_bytes (Char.chr (97 + ((rank + chunk) mod 26))))
  done;
  Buffer.contents b

(* Per-rank writer + read-back verifier, strictly per-rank files: fault
   reordering across ranks must never change what any one rank reads. *)
let workload () =
  let rank = Bg_rt.Libc.rank () in
  let fd =
    Bg_rt.Libc.openf
      ~flags:{ Sysreq.o_rdwr with Sysreq.creat = true; trunc = true }
      (file_path rank)
  in
  for chunk = 0 to chunks - 1 do
    let payload = Bytes.make chunk_bytes (Char.chr (97 + ((rank + chunk) mod 26))) in
    if Bg_rt.Libc.write fd payload <> chunk_bytes then
      failwith "cio_chaos: short write"
  done;
  Bg_rt.Libc.fsync fd;
  let back = Bg_rt.Libc.pread fd ~len:(chunk_bytes * chunks) ~offset:0 in
  if Bytes.to_string back <> expected_content rank then
    failwith "cio_chaos: read-back mismatch";
  Bg_rt.Libc.close fd

let ranks = 4

let hash_files cluster =
  let fs = Cnk.Cluster.fs cluster in
  let acc = ref Fnv.empty in
  for rank = 0 to ranks - 1 do
    match Bg_cio.Fs.resolve fs ~cwd:"/" (file_path rank) with
    | Error e ->
      failwith
        (Printf.sprintf "cio_chaos: rank %d file missing (%s)" rank (Errno.to_string e))
    | Ok inode ->
      let size = Bg_cio.Fs.size fs inode in
      let data =
        match Bg_cio.Fs.read fs inode ~offset:0 ~len:size with
        | Ok b -> b
        | Error e ->
          failwith (Printf.sprintf "cio_chaos: rank %d unreadable (%s)" rank
                      (Errno.to_string e))
      in
      acc := Fnv.add_int (Fnv.add_bytes !acc data) size
  done;
  Fnv.to_hex !acc

let run_cell ~seed cell =
  let cluster =
    Cnk.Cluster.create ~seed ~dims:(2, 2, 1) ~nodes_per_io_node:2
      ~cio:Bg_cio.Reliable.default_on ()
  in
  let machine = Cnk.Cluster.machine cluster in
  let obs = Machine.obs machine in
  Obs.set_enabled obs true;
  Cnk.Cluster.boot_all cluster;
  Net.set_fault_config machine.Machine.collective
    {
      Net.drop_rate = cell.drop;
      corrupt_rate = cell.corrupt;
      dup_rate = cell.drop /. 2.;
      jitter_max = (if cell.drop > 0. || cell.corrupt > 0. then 200 else 0);
    };
  let sched = Bg_control.Scheduler.create cluster in
  ignore (Res.Recovery.attach sched);
  let injector =
    Res.Injector.attach
      ~config:
        {
          Res.Injector.default with
          Res.Injector.ciod_crash_mean = cell.ciod_crash_mean;
          ciod_restart_after = 150_000;
        }
      cluster
  in
  let start = Bg_engine.Sim.now (Cnk.Cluster.sim cluster) in
  let image = Image.executable ~name:"cio-chaos" workload in
  Cnk.Cluster.run_job cluster (Job.create ~name:"cio-chaos" image);
  let makespan = Bg_engine.Sim.now (Cnk.Cluster.sim cluster) - start in
  let net = machine.Machine.collective in
  let ciod_sum f =
    let total = ref 0 in
    for io = 0 to Cnk.Cluster.io_node_count cluster - 1 do
      total := !total + f (Cnk.Cluster.ciod cluster ~io_node:io)
    done;
    !total
  in
  {
    cell;
    makespan;
    drops = Net.drops net;
    corruptions = Net.corruptions net;
    duplicates = Net.duplicates net;
    retransmits = Obs.counter_total obs ~subsystem:"cio" ~name:"retransmits";
    dups_replayed = ciod_sum Bg_cio.Ciod.retransmits_seen;
    crashes = Res.Injector.ciod_crash_count injector;
    eio = Obs.counter_total obs ~subsystem:"cio" ~name:"eio";
    file_digest = hash_files cluster;
    digest =
      Fnv.to_hex (Bg_engine.Trace.digest (Bg_engine.Sim.trace (Cnk.Cluster.sim cluster)));
  }

let header =
  "drop,corrupt,ciod_crash_mean,makespan,drops,corruptions,duplicates,retransmits,\
   dups_replayed,crashes,eio,file_digest"

let to_csv r =
  Printf.sprintf "%.2f,%.2f,%.0f,%d,%d,%d,%d,%d,%d,%d,%d,%s" r.cell.drop r.cell.corrupt
    r.cell.ciod_crash_mean r.makespan r.drops r.corruptions r.duplicates r.retransmits
    r.dups_replayed r.crashes r.eio r.file_digest

let sweep ~seed =
  let cells =
    List.concat_map
      (fun drop ->
        List.map (fun corrupt -> { drop; corrupt; ciod_crash_mean = 0. }) [ 0.; 0.05 ])
      [ 0.; 0.1; 0.25 ]
    @ [ { drop = 0.1; corrupt = 0.05; ciod_crash_mean = 400_000. } ]
  in
  List.map (fun c -> run_cell ~seed c) cells

let run seed csv quiet =
  let rows = sweep ~seed in
  let combined =
    List.fold_left
      (fun acc r -> Fnv.add_bytes acc (Bytes.of_string r.digest))
      Fnv.empty rows
  in
  if not quiet then begin
    print_endline header;
    List.iter (fun r -> print_endline (to_csv r)) rows;
    List.iter
      (fun r ->
        Printf.printf "run digest: %.2f %.2f %.0f %s\n" r.cell.drop r.cell.corrupt
          r.cell.ciod_crash_mean r.digest)
      rows
  end;
  (match csv with
  | None -> ()
  | Some path ->
    let oc = open_out path in
    output_string oc (header ^ "\n");
    List.iter (fun r -> output_string oc (to_csv r ^ "\n")) rows;
    close_out oc;
    Printf.printf "wrote %s (%d rows)\n%!" path (List.length rows));
  (* The acceptance claims. 1: whatever the network did, the bytes the
     application sees are the bytes it wrote — every cell's files hash
     identically to the fault-free baseline's. *)
  let baseline =
    List.find (fun r -> r.cell.drop = 0. && r.cell.corrupt = 0. && r.crashes = 0) rows
  in
  List.iter
    (fun r ->
      if r.file_digest <> baseline.file_digest then
        failwith
          (Printf.sprintf
             "cio_chaos: file bytes diverged at drop=%.2f corrupt=%.2f crash=%.0f \
              (%s vs %s)"
             r.cell.drop r.cell.corrupt r.cell.ciod_crash_mean r.file_digest
             baseline.file_digest);
      (* 2: reliability must come from retransmission, never from giving
         up — no cell may surface EIO to the application. *)
      if r.eio > 0 then
        failwith
          (Printf.sprintf "cio_chaos: %d EIO surfaced at drop=%.2f corrupt=%.2f"
             r.eio r.cell.drop r.cell.corrupt))
    rows;
  (* 3: the faulty cells really exercised the machinery. *)
  let faulty = List.filter (fun r -> r.cell.drop > 0.) rows in
  if faulty = [] then failwith "cio_chaos: sweep has no faulty cells";
  List.iter
    (fun r ->
      if r.drops = 0 || r.retransmits = 0 then
        failwith
          (Printf.sprintf
             "cio_chaos: drop=%.2f cell saw drops=%d retransmits=%d; fault model inert"
             r.cell.drop r.drops r.retransmits))
    faulty;
  (match List.find_opt (fun r -> r.cell.ciod_crash_mean > 0.) rows with
  | Some r when r.crashes = 0 ->
    failwith "cio_chaos: crash cell injected no CIOD crashes; lower the mean"
  | _ -> ());
  Printf.printf "combined digest: %s\n" (Fnv.to_hex combined)

let cmd =
  let seed = Arg.(value & opt int64 1L & info [ "seed" ] ~doc:"Fault-injection seed.") in
  let csv =
    Arg.(
      value & opt (some string) None & info [ "csv" ] ~doc:"Write the sweep as CSV.")
  in
  let quiet =
    Arg.(value & flag & info [ "quiet"; "q" ] ~doc:"Only print the digest lines.")
  in
  Cmd.v
    (Cmd.info "cio_chaos_tool"
       ~doc:
         "Sweep collective-network faults against the reliable function-ship \
          transport and verify app-visible file bytes never change")
    Term.(const run $ seed $ csv $ quiet)

let () = exit (Cmd.eval cmd)
