(* noise_tool — FWQ and noise-at-scale measurements from the command line.

     dune exec bin/noise_tool.exe -- fwq --kernel cnk
     dune exec bin/noise_tool.exe -- fwq --kernel fwk --samples 5000
     dune exec bin/noise_tool.exe -- inject --period 500000 --duration 25000
     dune exec bin/noise_tool.exe -- scale --nodes 65536
     dune exec bin/noise_tool.exe -- attribute --samples 2000 *)

open Cmdliner
module Noise = Bg_noise
module Accounting = Bg_obs.Accounting
module Obs = Bg_obs.Obs
module Export = Bg_obs.Export

let fwq kernel samples =
  let report =
    match kernel with
    | "cnk" -> Noise.Fwq_harness.run_on_cnk ~samples ()
    | "fwk" -> Noise.Fwq_harness.run_on_fwk ~samples ()
    | _ -> failwith "kernel must be cnk or fwk"
  in
  Format.printf "%a" Noise.Fwq_harness.pp report;
  0

let inject period duration samples =
  let cluster = Cnk.Cluster.create ~dims:(1, 1, 1) () in
  Cnk.Cluster.boot_all cluster;
  let profile =
    { Noise.Injection.period_cycles = period; duration_cycles = duration; jitter = 0.3 }
  in
  Format.printf "injecting %a into CNK@." Noise.Injection.pp_profile profile;
  Noise.Injection.attach (Cnk.Cluster.node cluster 0) ~profile ~seed:5L
    ~until:(Bg_engine.Sim.now (Cnk.Cluster.sim cluster) + 30_000_000_000);
  let entry, collect = Bg_apps.Fwq.program ~samples ~threads:4 () in
  Cnk.Cluster.run_job cluster
    (Job.create ~name:"fwq" (Image.executable ~name:"fwq" entry));
  Printf.printf "FWQ max spread with injection: %.4f%%\n"
    (Bg_apps.Fwq.max_spread_percent (collect ()));
  0

let characterize kernel samples =
  let report =
    match kernel with
    | "cnk" -> Noise.Fwq_harness.run_on_cnk ~samples ()
    | "fwk" -> Noise.Fwq_harness.run_on_fwk ~samples ()
    | _ -> failwith "kernel must be cnk or fwk"
  in
  List.iter
    (fun t ->
      let s = Noise.Analysis.characterize t.Noise.Fwq_harness.samples in
      Format.printf "core %d: %a" t.Noise.Fwq_harness.thread Noise.Analysis.pp s;
      List.iter
        (fun (lo, hi, c) -> Printf.printf "    %6d..%6d cycles: %d events\n" lo hi c)
        (Noise.Analysis.classify s ~bins:6))
    report.Noise.Fwq_harness.threads;
  0

(* --- per-source noise attribution (ledger + UPC + flamegraphs) --------- *)

(* One FWQ run with accounting, observability and the UPC unit all live.
   Returns the machine the run happened on; the caller reads ledgers,
   counters and spans off it. *)
let attributed_cnk_run samples =
  let cluster = Cnk.Cluster.create ~dims:(1, 1, 1) ~seed:1L () in
  let machine = Cnk.Cluster.machine cluster in
  Obs.set_enabled machine.Machine.obs true;
  Accounting.set_enabled machine.Machine.acct true;
  Bg_hw.Upc.start (Bg_hw.Chip.upc (Machine.chip machine 0));
  Cnk.Cluster.boot_all cluster;
  let entry, collect = Bg_apps.Fwq.program ~samples ~threads:4 () in
  Cnk.Cluster.run_job cluster (Job.create ~name:"fwq" (Image.executable ~name:"fwq" entry));
  ignore (collect ());
  machine

let attributed_fwk_run samples =
  let machine = Machine.create ~dims:(1, 1, 1) () in
  Obs.set_enabled machine.Machine.obs true;
  Accounting.set_enabled machine.Machine.acct true;
  Bg_hw.Upc.start (Bg_hw.Chip.upc (Machine.chip machine 0));
  (* fixed noise phase: attribution runs must be reproducible *)
  let node = Bg_fwk.Node.create ~noise_seed:7L machine ~rank:0 ~stripped:true () in
  let entry, collect = Bg_apps.Fwq.program ~samples ~threads:4 () in
  let finished = ref false in
  Bg_fwk.Node.boot node ~on_ready:(fun () ->
      Bg_fwk.Node.on_job_complete node (fun () -> finished := true);
      match
        Bg_fwk.Node.launch node (Job.create ~name:"fwq" (Image.executable ~name:"fwq" entry))
      with
      | Ok () -> ()
      | Error e -> failwith e);
  ignore (Bg_engine.Sim.run machine.Machine.sim);
  if not !finished then failwith "attribute: fwk job did not finish";
  ignore (collect ());
  machine

(* Share of a core's attributed cycles that noise sources (timer ticks +
   daemons) stole — the quantity the paper's Figs 5-7 chase. *)
let noise_share entries =
  let totals = Accounting.totals entries in
  let total = List.fold_left (fun a (_, c) -> a + c) 0 totals in
  let part st = List.assoc st totals in
  if total = 0 then 0.0
  else
    float_of_int (part Accounting.Interrupt + part Accounting.Daemon)
    /. float_of_int total

let print_decomposition label (machine : Machine.t) =
  let acct = machine.Machine.acct in
  let entries = Accounting.entries acct in
  let totals = Accounting.totals entries in
  let total = List.fold_left (fun a (_, c) -> a + c) 0 totals in
  Printf.printf "== %s ==\n" label;
  Printf.printf "  %-10s %14s %8s\n" "state" "cycles" "share";
  List.iter
    (fun (st, c) ->
      Printf.printf "  %-10s %14d %7.3f%%\n" (Accounting.state_name st) c
        (if total = 0 then 0.0 else 100.0 *. float_of_int c /. float_of_int total))
    totals;
  Printf.printf "  conservation: %s\n"
    (if Accounting.conserved acct then "attributed = elapsed on every core"
     else "VIOLATED");
  let upc = Bg_hw.Chip.upc (Machine.chip machine 0) in
  Printf.printf "  UPC counters:\n";
  List.iter
    (fun (r : Bg_hw.Upc.reading) ->
      let scope =
        if r.Bg_hw.Upc.core = Bg_hw.Upc.chip_scope then "chip"
        else Printf.sprintf "core%d" r.Bg_hw.Upc.core
      in
      Printf.printf "    %-18s %-6s %d\n"
        (Bg_hw.Upc.event_name r.Bg_hw.Upc.event)
        scope r.Bg_hw.Upc.count)
    (Bg_hw.Upc.snapshot upc);
  Printf.printf "  acct digest=%s upc digest=%s\n"
    (Bg_engine.Fnv.to_hex (Accounting.digest acct))
    (Bg_engine.Fnv.to_hex (Bg_hw.Upc.digest upc));
  if not (Accounting.conserved acct) then failwith (label ^ ": conservation violated")

let attribute samples folded_prefix =
  Printf.printf "noise attribution: FWQ, %d samples per thread\n" samples;
  let cnk = attributed_cnk_run samples in
  print_decomposition "CNK" cnk;
  let fwk = attributed_fwk_run samples in
  print_decomposition "Linux (FWK)" fwk;
  let cnk_path = folded_prefix ^ "_cnk.folded" in
  let fwk_path = folded_prefix ^ "_fwk.folded" in
  let write path obs =
    let s = Export.collapsed_stacks obs in
    Export.to_file ~path s;
    List.length (String.split_on_char '\n' (String.trim s))
  in
  let n_cnk = write cnk_path cnk.Machine.obs in
  let n_fwk = write fwk_path fwk.Machine.obs in
  Printf.printf "wrote %s (%d stacks), %s (%d stacks)\n" cnk_path n_cnk fwk_path n_fwk;
  let s_cnk = noise_share (Accounting.entries cnk.Machine.acct) in
  let s_fwk = noise_share (Accounting.entries fwk.Machine.acct) in
  Printf.printf "tick+daemon share: CNK %.4f%%, FWK %.4f%%\n" (100.0 *. s_cnk)
    (100.0 *. s_fwk);
  if s_fwk > s_cnk then begin
    Printf.printf "OK: FWK noise share strictly exceeds CNK's\n";
    0
  end
  else begin
    Printf.printf "FAIL: expected FWK tick+daemon share > CNK share\n";
    1
  end

let scale nodes iterations =
  Printf.printf "allreduce slowdown at %d nodes (x%d iterations):\n" nodes iterations;
  List.iter
    (fun (label, profile) ->
      Printf.printf "  %-14s %.4f\n" label
        (Noise.Scaling.allreduce_slowdown ~nodes ~iterations ~work_cycles:850_000
           ~profile ~seed:11L))
    [ ("quiet (CNK)", Noise.Scaling.Quiet); ("linux daemons", Noise.Scaling.Linux_daemons) ];
  0

let kernel_arg = Arg.(value & opt string "cnk" & info [ "kernel"; "k" ] ~doc:"cnk or fwk.")
let samples_arg = Arg.(value & opt int 12_000 & info [ "samples" ] ~doc:"FWQ samples.")
let period_arg = Arg.(value & opt int 500_000 & info [ "period" ] ~doc:"Injection period (cycles).")
let duration_arg = Arg.(value & opt int 25_000 & info [ "duration" ] ~doc:"Injection duration (cycles).")
let nodes_arg = Arg.(value & opt int 4096 & info [ "nodes" ] ~doc:"Node count.")
let iters_arg = Arg.(value & opt int 300 & info [ "iterations" ] ~doc:"Iterations.")

let attr_samples_arg =
  Arg.(value & opt int 2_000 & info [ "samples" ] ~doc:"FWQ samples per thread.")

let folded_arg =
  Arg.(
    value
    & opt string "/tmp/noise_attr"
    & info [ "folded-prefix" ] ~doc:"Prefix for <prefix>_{cnk,fwk}.folded flamegraph files.")

let cmds =
  [
    Cmd.v (Cmd.info "fwq" ~doc:"Run the FWQ benchmark") Term.(const fwq $ kernel_arg $ samples_arg);
    Cmd.v (Cmd.info "inject" ~doc:"Inject noise into CNK and measure FWQ")
      Term.(const inject $ period_arg $ duration_arg $ samples_arg);
    Cmd.v (Cmd.info "scale" ~doc:"Noise magnification at scale")
      Term.(const scale $ nodes_arg $ iters_arg);
    Cmd.v (Cmd.info "characterize" ~doc:"Infer the noise signature from FWQ data")
      Term.(const characterize $ kernel_arg $ samples_arg);
    Cmd.v
      (Cmd.info "attribute"
         ~doc:
           "Run FWQ under both kernels with the cycle ledger, UPC counters and span \
            collection live; print the per-source noise decomposition and write \
            collapsed-stack flamegraph files.")
      Term.(const attribute $ attr_samples_arg $ folded_arg);
  ]

let () = exit (Cmd.eval' (Cmd.group (Cmd.info "noise_tool" ~doc:"Noise measurement toolbox") cmds))
