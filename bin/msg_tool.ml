(* msg_tool — the paper's Table I experiment: per-layer one-way latency
   and bandwidth over the descriptor-based DMA engine, CNK's memory-mapped
   user-space path against the FWK's kernel-mediated syscall path.

     dune exec bin/msg_tool.exe -- --json BENCH_msg.json

   Three cells (Bg_msgbench): CNK user-space DMA, FWK kernel-mediated
   with the tick scheduler disabled (its best case), FWK with the 1 kHz
   tick preempting the injection path. The tool asserts the paper's
   ordering claims before printing anything irrevocable:

   - CNK one-way latency is strictly below the quiet FWK at every
     message size and layer (§V.C: "the kernel is not in the way");
   - CNK shows an eager/rendezvous crossover (small messages eager,
     large messages rendezvous — the per-byte FIFO copy vs the
     zero-copy rDMA-get);
   - enabling the tick widens the FWK's total latency gap.

   Runs are seeded and deterministic: the final `sweep digest:` line must
   be bit-identical across runs (`make msg-smoke` checks exactly that). *)

open Cmdliner
module Mb = Bg_msgbench.Msgbench

let die fmt = Printf.ksprintf (fun m -> prerr_endline ("msg_tool: " ^ m); exit 1) fmt

let check_orderings results =
  let find cell = List.find (fun r -> r.Mb.cell = cell) results in
  let cnk = find Mb.Cnk_user in
  let quiet = find Mb.Fwk_quiet in
  let tick = find Mb.Fwk_tick in
  (* CNK strictly faster than the kernel-mediated path, everywhere *)
  List.iter
    (fun (layer, bytes, cnk_cy) ->
      match Mb.find_latency quiet ~layer ~bytes with
      | None -> die "missing FWK point %s/%d" layer bytes
      | Some fwk_cy ->
        if cnk_cy >= fwk_cy then
          die "ordering violated: %s %dB cnk=%d >= fwk=%d cycles" layer bytes
            cnk_cy fwk_cy)
    cnk.Mb.latency;
  (* the crossover exists on CNK, and eager wins the smallest size *)
  (match Mb.crossover cnk with
  | None -> die "no eager/rendezvous crossover on CNK"
  | Some x ->
    let s0 = List.hd cnk.Mb.sizes in
    let e = Option.get (Mb.find_latency cnk ~layer:"dcmf_eager" ~bytes:s0) in
    let v = Option.get (Mb.find_latency cnk ~layer:"dcmf_rndv" ~bytes:s0) in
    if not (e < v) then die "eager does not win at %d bytes" s0;
    Printf.printf "ok: CNK crossover at %d bytes\n" x);
  (* the tick scheduler widens the whole-sweep gap; wall time absorbs
     every preemption, where the per-sample latency sum can hide it in
     poll-loop quantization *)
  let gap_quiet = quiet.Mb.wall - cnk.Mb.wall in
  let gap_tick = tick.Mb.wall - cnk.Mb.wall in
  if gap_tick <= gap_quiet then
    die "tick did not widen the gap: quiet=%d tick=%d cycles" gap_quiet gap_tick;
  Printf.printf "ok: CNK < FWK at every size; tick widens gap %d -> %d cycles\n"
    gap_quiet gap_tick

let run json quick =
  let sizes = if quick then [ 32; 1024; 4096 ] else Mb.default_sizes in
  let results = Mb.run_all ~sizes () in
  check_orderings results;
  Mb.pp_table Format.std_formatter results;
  Format.pp_print_flush Format.std_formatter ();
  (match json with
  | None -> ()
  | Some path ->
    let oc = open_out path in
    output_string oc (Mb.to_json results);
    close_out oc;
    Printf.printf "wrote %s\n" path);
  Printf.printf "sweep digest: %s\n" (Mb.digest results)

let json =
  Arg.(value & opt (some string) None & info [ "json" ] ~docv:"PATH"
         ~doc:"Write the machine-readable BENCH_msg.json report to \\$(docv).")

let quick =
  Arg.(value & flag & info [ "quick" ] ~doc:"Three sizes instead of five.")

let cmd =
  Cmd.v
    (Cmd.info "msg_tool" ~doc:"Table I: user-space vs kernel-mediated messaging")
    Term.(const run $ json $ quick)

let () = exit (Cmd.eval cmd)
