(* bisect_tool — whole-machine snapshot/restore and divergence bisection.

     dune exec bin/bisect_tool.exe -- --scenario cnk_io -a glitch=0 -b glitch=1
     dune exec bin/bisect_tool.exe -- --selftest

   Given a seed and two knob sets for one scenario, the tool runs each
   knob set once, snapshotting on a geometric event schedule to bracket
   the first divergent capture, then binary-searches restore points
   (each probe is a deterministic replay to the midpoint cursor) down
   to the exact first event at which the two runs differ — printing the
   diverging snapshot region, the offending span and the causal
   neighborhood of the divergence.

   --selftest additionally proves the restore-continuation invariant on
   both kernels: snapshot mid-run, restore (replay + byte-verify),
   continue, and require the final trace/span/causal digests to equal
   the uninterrupted run's. Output is deterministic for a fixed seed;
   `make snap-smoke` runs it twice and diffs. *)

open Cmdliner
module Snaprun = Bg_snaprun.Snaprun

let scn_exn name =
  match Snaprun.find name with
  | Some s -> s
  | None ->
    failwith
      (Printf.sprintf "unknown scenario %s (have: %s)" name
         (String.concat ", "
            (List.map (fun s -> s.Snaprun.scn_name) Snaprun.scenarios)))

(* --- restore-continuation invariant ----------------------------------- *)

let check_restore ~seed scn =
  let knobs = [] in
  (* Uninterrupted run: the reference digests. *)
  let ref_inst = scn.Snaprun.build ~seed ~knobs in
  let final = Snaprun.run_until_quiet ref_inst in
  let want = Snaprun.digests ref_inst in
  (* Snapshot halfway, restore (replay + byte-verify), continue. *)
  let cursor = final / 2 in
  let _, file, outcome = Snaprun.snapshot_at scn ~seed ~knobs ~events:cursor in
  (match outcome with
  | `Reached -> ()
  | `Drained n -> failwith (Printf.sprintf "drained at %d before cursor %d" n cursor));
  (* Round-trip the container through bytes on the way. *)
  let file =
    match Bg_snap.Snap.decode (Bg_snap.Snap.encode file) with
    | Ok f -> f
    | Error _ -> failwith "snapshot did not survive encode/decode"
  in
  let inst =
    match Snaprun.restore scn file with
    | Ok inst -> inst
    | Error e -> failwith ("restore failed: " ^ e)
  in
  ignore (Snaprun.run_until_quiet inst);
  let got = Snaprun.digests inst in
  if got <> want then
    failwith
      (Format.asprintf "continuation diverged after restore:@ want %a@ got %a"
         Snaprun.pp_digests want Snaprun.pp_digests got);
  Format.printf "restore %-9s cursor=%-6d ok: %a@." scn.Snaprun.scn_name cursor
    Snaprun.pp_digests got

(* --- bisection -------------------------------------------------------- *)

let run_bisect ~seed ~verbose scn knobs_a knobs_b =
  let log = if verbose then fun s -> Format.printf "  %s@." s else fun _ -> () in
  Format.printf "bisect %s: a={%s} b={%s} seed=%Ld@." scn.Snaprun.scn_name
    (String.concat "," (List.map (fun (k, v) -> k ^ "=" ^ v) knobs_a))
    (String.concat "," (List.map (fun (k, v) -> k ^ "=" ^ v) knobs_b))
    seed;
  match Snaprun.bisect scn ~seed ~knobs_a ~knobs_b ~log () with
  | Error e ->
    Format.printf "no divergence: %s@." e;
    None
  | Ok d ->
    List.iter (fun l -> Format.printf "%s@." l) (Snaprun.report_lines d);
    Some d

(* --- selftest --------------------------------------------------------- *)

let selftest ~seed ~verbose =
  List.iter (fun scn -> check_restore ~seed scn) Snaprun.scenarios;
  List.iter
    (fun name ->
      let scn = scn_exn name in
      match
        run_bisect ~seed ~verbose scn
          [ ("glitch", "0") ] [ ("glitch", "1") ]
      with
      | None -> failwith (name ^ ": glitch produced no divergence")
      | Some d ->
        (* The divergence must be the glitch itself: the b side's extra
           span (or causal node) is snap.glitch. *)
        let span_ok =
          match d.Snaprun.div_span with
          | Some ("b", s) -> s.Bg_obs.Obs.cat = "snap" && s.Bg_obs.Obs.name = "glitch"
          | _ -> false
        in
        let causal_ok =
          List.exists
            (fun l ->
              String.length l >= 10
              && String.sub l 0 10 = "only in b:"
              (* the neighborhood line names the glitch node *)
              &&
              let rec has_sub i =
                i + 11 <= String.length l
                && (String.sub l i 11 = "snap.glitch" || has_sub (i + 1))
              in
              has_sub 0)
            d.Snaprun.div_causal
        in
        if not (span_ok && causal_ok) then
          failwith (name ^ ": divergence did not localize to the glitch event"))
    [ "cnk_io"; "fwk_noise" ];
  Format.printf "selftest ok@."

(* --- cli -------------------------------------------------------------- *)

let run selftest_flag scenario seed knobs_a knobs_b verbose =
  let knobs_a = List.map Snaprun.parse_knob knobs_a in
  let knobs_b = List.map Snaprun.parse_knob knobs_b in
  try
    if selftest_flag then selftest ~seed ~verbose
    else begin
      let scn = scn_exn scenario in
      match run_bisect ~seed ~verbose scn knobs_a knobs_b with
      | Some _ -> ()
      | None -> exit 1
    end
  with Failure msg ->
    Format.eprintf "bisect_tool: %s@." msg;
    exit 1

let cmd =
  let selftest_flag =
    Arg.(
      value & flag
      & info [ "selftest" ]
          ~doc:
            "Verify the restore-continuation invariant on both kernels, then \
             bisect a seeded glitch on each scenario and require the answer to \
             land on the glitch event.")
  in
  let scenario =
    Arg.(
      value & opt string "cnk_io"
      & info [ "scenario" ] ~doc:"Scenario name (cnk_io or fwk_noise).")
  in
  let seed = Arg.(value & opt int64 1L & info [ "seed" ] ~doc:"Simulation seed.") in
  let knobs_a =
    Arg.(value & opt_all string [] & info [ "a" ] ~doc:"Knob k=v for run A (repeatable).")
  in
  let knobs_b =
    Arg.(value & opt_all string [] & info [ "b" ] ~doc:"Knob k=v for run B (repeatable).")
  in
  let verbose =
    Arg.(value & flag & info [ "verbose"; "v" ] ~doc:"Log bracketing and probes.")
  in
  Cmd.v
    (Cmd.info "bisect_tool"
       ~doc:
         "Snapshot two knob settings of one deterministic scenario and \
          binary-search restore points to the exact first divergent event")
    Term.(const run $ selftest_flag $ scenario $ seed $ knobs_a $ knobs_b $ verbose)

let () = exit (Cmd.eval cmd)
