(* sched_tool — the control system as a service: sweep pluggable
   scheduling policies over one multi-tenant job stream and bill every
   tenant against its SLOs (paper §V.B: the control system owns job
   launch, placement and recovery; this tool exercises that ownership
   at job-stream scale).

     dune exec bin/sched_tool.exe -- --seed 1

   One seeded open-arrival workload — a thousand-plus jobs from dozens
   of tenants (batch, communication-heavy, gang-scheduled interactive,
   opportunistic filler) — replays on a 64-node machine under each
   policy in turn: FCFS, EASY backfill, gang co-scheduling, weighted
   fair-share, all layered over torus-aware congestion-scored placement
   of the communication-heavy jobs. Mid-stream, an injector lands node
   deaths and a fatal CIOD crash while the queue is loaded, and the
   recovery policy walks the machine through its degradation tiers —
   shedding backfill, capping shapes, closing admission — before
   recovering.

   The tool asserts the shape of the results: every arrival is
   accounted for (completed + failed + shed + refused = offered), EASY
   reaches at least FCFS utilization while actually backfilling, gang
   units co-schedule, fair-share keeps the per-tenant p99 queue-wait
   spread no wider than FCFS, walltime runaways are killed, and a
   same-seed FCFS twin run reproduces both the SLO digest and the sim
   trace digest bit-for-bit. Per-policy SLO tables and digest lines are
   printed for `make sched-smoke` to compare across two runs. *)

open Cmdliner
module Obs = Bg_obs.Obs
module Res = Bg_resilience
module Ctl = Bg_control
module Fnv = Bg_engine.Fnv
module Sim = Bg_engine.Sim
module Workload = Bg_sched.Workload
module Strategy = Bg_sched.Strategy
module Service = Bg_sched.Service
module Slo = Bg_sched.Slo

let dims = (4, 4, 4) (* 64 nodes; eight psets of 8 *)
let total_nodes = 64
let spares = [ 62; 63 ]
let burst1 = 2_000_000
let burst2 = 4_500_000

let policy_config =
  {
    Res.Policy.default with
    Res.Policy.spare_substitution = true;
    degraded_after = 2;
    critical_after = 6;
    recovery_cooldown = 1_500_000;
    shape_cap_degraded = Some (2, 2, 2);
  }

type run_result = {
  kind : Strategy.kind;
  slo : Slo.report;
  slo_digest : string;
  sim_digest : string;
  sched_digest : string;
  offered : int;
  refused : int;
  shed : int;
  walltime_kills : int;
  backfilled : int;
  gangs : int;
  transitions : int;
  substitutions : int;
}

let scenario ~seed ~tenants ~jobs_per_tenant ~faults kind =
  let cluster = Cnk.Cluster.create ~dims ~seed ~nodes_per_io_node:8 () in
  let machine = Cnk.Cluster.machine cluster in
  let sim = Cnk.Cluster.sim cluster in
  let obs = Machine.obs machine in
  Obs.set_enabled obs true;
  Cnk.Cluster.boot_all cluster;
  let specs =
    Workload.generate ~seed (Workload.mixed_tenants ~tenants ~jobs_per_tenant)
  in
  let svc = Service.create ~kind cluster specs in
  let sched = Service.scheduler svc in
  List.iter
    (fun rank -> Ctl.Partition.set_spare (Ctl.Scheduler.partition sched) ~rank true)
    spares;
  let inj = Res.Injector.attach cluster in
  let policy = Res.Policy.attach ~config:policy_config sched in
  if faults then begin
    let at cycle f = ignore (Sim.schedule_at sim cycle f) in
    let inject e = Res.Injector.inject_now inj e in
    (* two bursts while the queue is loaded: enough pressure inside one
       cooldown window to walk Healthy -> Degraded (shed backfill, cap
       shapes) and touch Critical (close admission) *)
    at burst1 (fun () ->
        inject (Res.Fault_event.Node_death { rank = 9 });
        inject (Res.Fault_event.Link_failure { rank = 0; dir = 0 }));
    at burst2 (fun () ->
        inject (Res.Fault_event.Node_death { rank = 27 });
        inject (Res.Fault_event.Link_failure { rank = 13; dir = 2 });
        inject (Res.Fault_event.Ciod_crash { io_node = 3; fatal = true }))
  end;
  Service.run svc;
  let strategy = Service.strategy svc in
  let slo =
    Slo.collect obs
      ~tenants:(Service.tenants_of specs)
      ~policy:(Strategy.kind_name kind)
      ~seed:(Int64.to_int seed) ~total_nodes ~makespan:(Service.makespan svc)
      ~backfilled:(Strategy.backfilled strategy)
      ~gangs_started:(Strategy.gangs_started strategy)
      ()
  in
  let sched_digest =
    let b = Buffer.create 4096 in
    Ctl.Scheduler.capture sched b;
    Fnv.to_hex (Fnv.add_bytes Fnv.empty (Buffer.to_bytes b))
  in
  {
    kind;
    slo;
    slo_digest = Fnv.to_hex (Slo.digest slo);
    sim_digest = Fnv.to_hex (Bg_engine.Trace.digest (Sim.trace sim));
    sched_digest;
    offered = Service.offered svc;
    refused = Service.refused svc;
    shed = Res.Policy.jobs_shed policy;
    walltime_kills =
      Obs.counter_value obs ~subsystem:"scheduler" ~name:"walltime_kills" ();
    backfilled = Strategy.backfilled strategy;
    gangs = Strategy.gangs_started strategy;
    transitions = Res.Policy.transitions policy;
    substitutions = Res.Recovery.substitutions (Res.Policy.recovery policy);
  }

let require ok msg = if not ok then failwith ("sched_tool: " ^ msg)

let find results kind =
  List.find (fun r -> r.kind = kind) results

let run seed tenants jobs_per_tenant no_faults slo_csv quiet =
  let faults = not no_faults in
  require (tenants >= 2) "need at least two tenants";
  let results =
    List.map
      (fun kind -> scenario ~seed ~tenants ~jobs_per_tenant ~faults kind)
      Strategy.all_kinds
  in
  (* same-seed twin: the whole sweep is a pure function of the seed *)
  let twin = scenario ~seed ~tenants ~jobs_per_tenant ~faults Strategy.Fcfs in
  let fcfs = find results Strategy.Fcfs in
  let easy = find results Strategy.Easy in
  let gang = find results Strategy.Gang in
  let fair = find results Strategy.Fair in
  (* -- conservation: every arrival ends somewhere we can point to -- *)
  List.iter
    (fun r ->
      require
        (r.offered = tenants * jobs_per_tenant)
        (Printf.sprintf "%s offered %d of %d arrivals"
           (Strategy.kind_name r.kind) r.offered (tenants * jobs_per_tenant));
      require
        (r.slo.Slo.completed_total + r.slo.Slo.failed_total + r.shed + r.refused
        = r.offered)
        (Printf.sprintf "%s lost jobs: completed=%d failed=%d shed=%d refused=%d of %d"
           (Strategy.kind_name r.kind) r.slo.Slo.completed_total
           r.slo.Slo.failed_total r.shed r.refused r.offered);
      require
        (r.slo.Slo.completed_total * 10 >= r.offered * 9)
        (Printf.sprintf "%s completed only %d of %d" (Strategy.kind_name r.kind)
           r.slo.Slo.completed_total r.offered))
    results;
  (* -- policy shape claims -- *)
  require
    (easy.slo.Slo.utilization_milli >= fcfs.slo.Slo.utilization_milli)
    (Printf.sprintf "EASY utilization %d < FCFS %d" easy.slo.Slo.utilization_milli
       fcfs.slo.Slo.utilization_milli);
  require (easy.backfilled > 0) "EASY never backfilled";
  require (gang.gangs > 0) "gang strategy never co-scheduled a unit";
  require
    (Slo.max_slowdown_p99 fair.slo <= Slo.max_slowdown_p99 fcfs.slo +. 1e-9)
    (Printf.sprintf
       "fair-share worst tenant slowdown %.0f exceeds FCFS %.0f"
       (Slo.max_slowdown_p99 fair.slo)
       (Slo.max_slowdown_p99 fcfs.slo));
  List.iter
    (fun r ->
      require (r.walltime_kills > 0)
        (Printf.sprintf "%s: no runaway was walltime-killed"
           (Strategy.kind_name r.kind)))
    results;
  if faults then begin
    List.iter
      (fun r ->
        require (r.transitions >= 2)
          (Printf.sprintf "%s: health state never walked the tiers"
             (Strategy.kind_name r.kind));
        require (r.substitutions > 0)
          (Printf.sprintf "%s: no spare was substituted" (Strategy.kind_name r.kind)))
      results;
    (* FCFS leaves filler queued behind its blocked head, so entering
       Degraded must visibly shed it; work-conserving policies may have
       drained the backfill already *)
    require (fcfs.shed > 0) "degradation never shed backfill under FCFS"
  end;
  (* -- determinism: twin run reproduces every digest -- *)
  require (String.equal twin.slo_digest fcfs.slo_digest)
    "same-seed FCFS twin diverged in SLO digest";
  require (String.equal twin.sim_digest fcfs.sim_digest)
    "same-seed FCFS twin diverged in sim trace digest";
  require (String.equal twin.sched_digest fcfs.sched_digest)
    "same-seed FCFS twin diverged in scheduler state digest";
  if not quiet then begin
    List.iter
      (fun r ->
        Format.printf "%a" Slo.pp_table r.slo;
        Printf.printf
          "%s: refused=%d shed=%d walltime_kills=%d backfilled=%d gangs=%d \
           transitions=%d substitutions=%d\n\n"
          (Strategy.kind_name r.kind) r.refused r.shed r.walltime_kills
          r.backfilled r.gangs r.transitions r.substitutions)
      results;
    Printf.printf "%-6s %8s %12s %12s %13s %10s\n" "policy" "util%" "max_wait_p99"
      "p99_spread" "max_slow_p99" "makespan";
    List.iter
      (fun r ->
        Printf.printf "%-6s %8.1f %12.0f %12.2f %13.0f %10d\n"
          (Strategy.kind_name r.kind)
          (Slo.utilization_pct r.slo)
          (Slo.max_wait_p99 r.slo)
          (Slo.wait_p99_spread r.slo)
          (Slo.max_slowdown_p99 r.slo)
          r.slo.Slo.makespan)
      results;
    print_newline ()
  end;
  (match slo_csv with
  | None -> ()
  | Some path ->
    let oc = open_out path in
    output_string oc (Slo.csv_header ^ "\n");
    List.iter
      (fun r -> List.iter (fun row -> output_string oc (row ^ "\n")) (Slo.csv_rows r.slo))
      results;
    close_out oc;
    Printf.printf "wrote %s\n" path);
  List.iter
    (fun r ->
      Printf.printf "%s digest: slo=%s sim=%s sched=%s\n"
        (Strategy.kind_name r.kind) r.slo_digest r.sim_digest r.sched_digest)
    results;
  let combined =
    List.fold_left
      (fun acc r ->
        Fnv.add_string (Fnv.add_string (Fnv.add_string acc r.slo_digest) r.sim_digest)
          r.sched_digest)
      Fnv.empty results
  in
  Printf.printf "combined digest: %s\n" (Fnv.to_hex combined)

let cmd =
  let seed = Arg.(value & opt int64 1L & info [ "seed" ] ~doc:"Simulation seed.") in
  let tenants =
    Arg.(value & opt int 52 & info [ "tenants" ] ~doc:"Number of tenants.")
  in
  let jobs_per_tenant =
    Arg.(value & opt int 20 & info [ "jobs-per-tenant" ] ~doc:"Jobs per tenant.")
  in
  let no_faults =
    Arg.(value & flag & info [ "no-faults" ] ~doc:"Skip the fault bursts.")
  in
  let slo_csv =
    Arg.(
      value
      & opt (some string) None
      & info [ "slo-csv" ] ~doc:"Write the per-tenant SLO report as CSV.")
  in
  let quiet =
    Arg.(value & flag & info [ "quiet"; "q" ] ~doc:"Only print the digest lines.")
  in
  Cmd.v
    (Cmd.info "sched_tool"
       ~doc:"Sweep multi-tenant scheduling policies and bill per-tenant SLOs")
    Term.(const run $ seed $ tenants $ jobs_per_tenant $ no_faults $ slo_csv $ quiet)

let () = exit (Cmd.eval cmd)
