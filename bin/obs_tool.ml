(* obs_tool — run a small workload with the observability collector
   enabled and export what it saw.

     dune exec bin/obs_tool.exe -- --app fwq --chrome-trace out.json

   runs FWQ on a one-node CNK machine (launched through the control
   system's scheduler, so scheduler decisions appear in the trace) and
   writes a Chrome trace-event file loadable in chrome://tracing or
   Perfetto. --metrics-csv / --spans-csv dump the registry and span
   rings as CSV; --kernel fwk runs the same app on the Linux-like FWK
   for side-by-side comparison. The emitted JSON is validated before it
   is written, and the collector's span digest is printed so two runs
   of the same seed can be diffed with `grep digest`. *)

open Cmdliner
module Obs = Bg_obs.Obs
module Export = Bg_obs.Export
module Noise = Bg_noise

let app_program app ~samples =
  match app with
  | "fwq" ->
    let entry, _collect = Bg_apps.Fwq.program ~samples ~threads:4 () in
    entry
  | "ftq" ->
    let entry, _collect = Bg_apps.Ftq.program ~windows:(max 1 (samples / 100)) () in
    entry
  | other -> failwith (Printf.sprintf "unknown app %S (try fwq or ftq)" other)

let run_cnk ~app ~samples ~seed ~noise =
  let cluster = Cnk.Cluster.create ~dims:(1, 1, 1) ~seed () in
  let machine = Cnk.Cluster.machine cluster in
  let obs = Machine.obs machine in
  Obs.set_enabled obs true;
  Cnk.Cluster.boot_all cluster;
  if noise then
    Noise.Injection.attach
      (Cnk.Cluster.node cluster 0)
      ~profile:{ period_cycles = 850_000; duration_cycles = 16_000; jitter = 0.1 }
      ~seed:(Int64.add seed 7L)
      ~until:(Bg_engine.Sim.now (Cnk.Cluster.sim cluster) + 200_000_000);
  (* Route the job through the control system rather than launching
     directly, so the run exercises the scheduler instrumentation too. *)
  let sched = Bg_control.Scheduler.create cluster in
  let entry = app_program app ~samples in
  let job = Job.create ~name:app (Image.executable ~name:app entry) in
  ignore (Bg_control.Scheduler.submit sched ~shape:(1, 1, 1) job);
  Bg_control.Scheduler.drain sched;
  obs

let run_fwk ~app ~samples ~seed ~noise =
  let machine = Machine.create ~dims:(1, 1, 1) ~seed () in
  let obs = Machine.obs machine in
  Obs.set_enabled obs true;
  let noise_seed = if noise then Some (Int64.add seed 7L) else None in
  let node = Bg_fwk.Node.create ?noise_seed machine ~rank:0 ~stripped:true () in
  let entry = app_program app ~samples in
  let finished = ref false in
  Bg_fwk.Node.boot node ~on_ready:(fun () ->
      Bg_fwk.Node.on_job_complete node (fun () -> finished := true);
      match
        Bg_fwk.Node.launch node (Job.create ~name:app (Image.executable ~name:app entry))
      with
      | Ok () -> ()
      | Error e -> failwith e);
  ignore (Bg_engine.Sim.run machine.Machine.sim);
  if not !finished then failwith "obs_tool: fwk job did not finish";
  obs

let categories obs =
  List.sort_uniq compare (List.map (fun s -> s.Obs.cat) (Obs.spans obs))

let summarize obs =
  Printf.printf "spans: %d recorded, %d retained, %d dropped, %d left open\n"
    (Obs.span_count obs)
    (List.length (Obs.spans obs))
    (Obs.dropped_spans obs) (Obs.open_count obs);
  if Obs.dropped_spans obs > 0 then begin
    Printf.printf
      "WARNING: span ring overflow — %d span(s) evicted; raise ?ring_spans or \
       narrow instrumentation (per-scope obs/dropped_spans counters below)\n"
      (Obs.dropped_spans obs);
    List.iter
      (fun m ->
        if m.Obs.key.Obs.subsystem = "obs" && m.Obs.key.Obs.name = "dropped_spans"
        then Format.printf "  %a@." Obs.pp_metric m)
      (Obs.snapshot obs)
  end;
  Printf.printf "span categories: %s\n" (String.concat ", " (categories obs));
  Printf.printf "span digest: %s\n" (Bg_engine.Fnv.to_hex (Obs.digest obs));
  let metrics = Obs.snapshot obs in
  Printf.printf "metrics: %d keys\n" (List.length metrics);
  List.iter (fun m -> Format.printf "  %a@." Obs.pp_metric m) metrics

let write_file path contents =
  let oc = open_out path in
  output_string oc contents;
  close_out oc;
  Printf.printf "wrote %s (%d bytes)\n%!" path (String.length contents)

let run app kernel samples seed noise chrome metrics_csv spans_csv quiet =
  let obs =
    match kernel with
    | "cnk" -> run_cnk ~app ~samples ~seed ~noise
    | "fwk" -> run_fwk ~app ~samples ~seed ~noise
    | other -> failwith (Printf.sprintf "unknown kernel %S (try cnk or fwk)" other)
  in
  if not quiet then summarize obs;
  (match chrome with
  | None -> ()
  | Some path ->
    let json = Export.chrome_trace obs in
    (match Export.validate_json json with
    | Ok () -> ()
    | Error e -> failwith (Printf.sprintf "internal error: emitted bad JSON: %s" e));
    write_file path json);
  (match metrics_csv with
  | None -> ()
  | Some path -> write_file path (Export.metrics_csv obs));
  (match spans_csv with
  | None -> ()
  | Some path -> write_file path (Export.spans_csv obs));
  (* The smoke target relies on this: a CNK FWQ run must produce spans
     from every instrumented layer it promises. (FTQ is single-threaded
     and syscall-free, so only FWQ makes the guarantee.) *)
  if kernel = "cnk" && app = "fwq" then begin
    let cats = categories obs in
    let want = [ "cio"; "scheduler"; "syscall"; "tlb" ] in
    let missing = List.filter (fun c -> not (List.mem c cats)) want in
    if missing <> [] then
      failwith ("missing span categories: " ^ String.concat ", " missing)
  end

let cmd =
  let app_t =
    Arg.(value & opt string "fwq" & info [ "app" ] ~doc:"Workload: fwq or ftq.")
  in
  let kernel =
    Arg.(value & opt string "cnk" & info [ "kernel" ] ~doc:"Kernel: cnk or fwk.")
  in
  let samples =
    Arg.(value & opt int 2_000 & info [ "samples" ] ~doc:"Workload size (FWQ samples).")
  in
  let seed = Arg.(value & opt int64 1L & info [ "seed" ] ~doc:"Machine seed.") in
  let noise = Arg.(value & flag & info [ "noise" ] ~doc:"Attach noise injection.") in
  let chrome =
    Arg.(
      value
      & opt (some string) None
      & info [ "chrome-trace" ] ~doc:"Write a Chrome trace-event JSON file.")
  in
  let metrics_csv =
    Arg.(
      value
      & opt (some string) None
      & info [ "metrics-csv" ] ~doc:"Write the metrics registry as CSV.")
  in
  let spans_csv =
    Arg.(
      value & opt (some string) None & info [ "spans-csv" ] ~doc:"Write spans as CSV.")
  in
  let quiet = Arg.(value & flag & info [ "quiet"; "q" ] ~doc:"Suppress the summary.") in
  Cmd.v
    (Cmd.info "obs_tool" ~doc:"Run a workload with observability on and export traces")
    Term.(
      const run $ app_t $ kernel $ samples $ seed $ noise $ chrome $ metrics_csv
      $ spans_csv $ quiet)

let () = exit (Cmd.eval cmd)
