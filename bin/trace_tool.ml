(* trace_tool — causal-graph analysis from the command line.

     dune exec bin/trace_tool.exe -- critical-path --nodes 32
     dune exec bin/trace_tool.exe -- message-lifecycle

   critical-path runs the same seeded allreduce under CNK and under the
   Linux-like FWK with the causal collector, the cycle ledger and span
   collection live, then walks the edge graph backward from the last
   collective delivery: the chain it prints is the sequence of events
   that actually determined the completion time, every segment of it
   charged to a ledger category (or to the network). The tool asserts
   that the attribution tiles the path exactly and that the FWK path
   blames a strictly larger tick+daemon share than CNK's — the paper's
   noise story, read off a single causal trace instead of a statistic.

   message-lifecycle traces one function-shipped I/O request end to end
   (request mint on the compute node, CIOD service, reply delivery) over
   the reliable CIO transport and prints the chain plus the number of
   Request->Reply edges — at-most-once execution means exactly one per
   request even when frames were retransmitted.

   Both subcommands print the graph's FNV digest; two runs of the same
   seed must print the same hex string (`grep digest` and diff). *)

open Cmdliner
module Obs = Bg_obs.Obs
module Causal = Bg_obs.Causal
module Accounting = Bg_obs.Accounting
module Export = Bg_obs.Export

let enable_all machine =
  Obs.set_enabled machine.Machine.obs true;
  Accounting.set_enabled machine.Machine.acct true;
  Causal.set_enabled (Machine.causal machine) true

let dims_of nodes =
  match nodes with
  | 1 -> (1, 1, 1)
  | 2 -> (2, 1, 1)
  | 4 -> (2, 2, 1)
  | 8 -> (2, 2, 2)
  | 16 -> (4, 2, 2)
  | 32 -> (4, 4, 2)
  | 64 -> (4, 4, 4)
  | n -> (n, 1, 1)

let print_path path =
  List.iteri
    (fun i (n : Causal.node) ->
      let where =
        if n.Causal.rank = Obs.node_scope then "net/ctl"
        else Printf.sprintf "rank%d/core%d" n.Causal.rank n.Causal.core
      in
      Printf.printf "  %2d. @%-12d %-14s %s.%s\n" i n.Causal.at where n.Causal.cat
        n.Causal.name)
    path

(* Share of the on-path ledger cycles blamed on noise sources (timer
   ticks + daemons) — the quantity the critical path localizes. *)
let tick_daemon_share (a : Causal.attribution) =
  let part st = try List.assoc st a.Causal.ledger with Not_found -> 0 in
  if a.Causal.total = 0 then 0.0
  else
    float_of_int (part Accounting.Interrupt + part Accounting.Daemon)
    /. float_of_int a.Causal.total

let analyze ~label machine =
  let g = Machine.causal machine in
  match Causal.last_matching g ~cat:"coll" ~name:"deliver" with
  | None -> failwith (label ^ ": no collective delivery in the causal graph")
  | Some c ->
    let path = Causal.critical_path g c in
    let attr = Causal.attribute_path g machine.Machine.acct path in
    Printf.printf "== %s ==\n" label;
    Printf.printf "critical path to the last allreduce delivery (%d nodes):\n"
      (List.length path);
    print_path path;
    Format.printf "%a@." Causal.pp_attribution attr;
    let ledger_sum = List.fold_left (fun a (_, c) -> a + c) 0 attr.Causal.ledger in
    if attr.Causal.network + ledger_sum <> attr.Causal.total then
      failwith
        (Printf.sprintf "%s: attribution does not tile the path (%d + %d <> %d)" label
           attr.Causal.network ledger_sum attr.Causal.total);
    Printf.printf "attribution exact: network %d + ledger %d = path %d cycles\n"
      attr.Causal.network ledger_sum attr.Causal.total;
    Printf.printf "graph: %d nodes, %d edges, %d dropped\n" (Causal.node_count g)
      (Causal.edge_count g) (Causal.dropped g);
    Printf.printf "causal digest=%s\n" (Bg_engine.Fnv.to_hex (Causal.digest g));
    attr

let run_cnk_allreduce ~dims ~nodes ~iterations ~work ~seed =
  let cluster = Cnk.Cluster.create ~dims ~seed () in
  let machine = Cnk.Cluster.machine cluster in
  enable_all machine;
  Cnk.Cluster.boot_all cluster;
  let fabric = Bg_msg.Dcmf.make_fabric machine in
  for r = 0 to nodes - 1 do
    ignore (Bg_msg.Dcmf.attach fabric ~rank:r)
  done;
  let coll = Bg_msg.Mpi.Coll.create fabric ~participants:nodes in
  let entry, _ =
    Bg_apps.Allreduce_bench.program ~fabric ~coll ~iterations ~per_iteration_work:work ()
  in
  Cnk.Cluster.run_job cluster
    (Job.create ~name:"allreduce" (Image.executable ~name:"allreduce" entry));
  machine

let run_fwk_allreduce ~dims ~nodes ~iterations ~work ~seed =
  let machine = Machine.create ~dims ~seed () in
  enable_all machine;
  let fabric = Bg_msg.Dcmf.make_fabric machine in
  for r = 0 to nodes - 1 do
    ignore (Bg_msg.Dcmf.attach fabric ~rank:r)
  done;
  let coll = Bg_msg.Mpi.Coll.create fabric ~participants:nodes in
  let entry, _ =
    Bg_apps.Allreduce_bench.program ~fabric ~coll ~iterations ~per_iteration_work:work ()
  in
  let finished = Array.make nodes false in
  let fwk_nodes =
    Array.init nodes (fun rank -> Bg_fwk.Node.create machine ~rank ~stripped:true ())
  in
  Array.iteri
    (fun rank node ->
      Bg_fwk.Node.boot node ~on_ready:(fun () ->
          Bg_fwk.Node.on_job_complete node (fun () -> finished.(rank) <- true);
          match
            Bg_fwk.Node.launch node
              (Job.create ~name:"allreduce" (Image.executable ~name:"allreduce" entry))
          with
          | Ok () -> ()
          | Error e -> failwith e))
    fwk_nodes;
  ignore (Bg_engine.Sim.run machine.Machine.sim);
  Array.iteri
    (fun rank _ ->
      if not finished.(rank) then
        failwith (Printf.sprintf "trace_tool: FWK rank %d did not finish" rank))
    fwk_nodes;
  machine

let critical_path nodes iterations work seed chrome =
  let dims = dims_of nodes in
  Printf.printf "allreduce critical path: %d nodes, %d iterations x %d cycles, seed %Ld\n"
    nodes iterations work seed;
  let cnk = run_cnk_allreduce ~dims ~nodes ~iterations ~work ~seed in
  let a_cnk = analyze ~label:"CNK" cnk in
  let fwk = run_fwk_allreduce ~dims ~nodes ~iterations ~work ~seed in
  let a_fwk = analyze ~label:"Linux (FWK)" fwk in
  (match chrome with
  | None -> ()
  | Some path ->
    let json = Export.chrome_trace ~causal:(Machine.causal fwk) fwk.Machine.obs in
    (match Export.validate_json json with
    | Ok () -> ()
    | Error e -> failwith (Printf.sprintf "internal error: emitted bad JSON: %s" e));
    Export.to_file ~path json;
    Printf.printf "wrote %s (%d bytes, spans + causal flow arrows)\n" path
      (String.length json));
  let s_cnk = tick_daemon_share a_cnk in
  let s_fwk = tick_daemon_share a_fwk in
  Printf.printf "tick+daemon share of the critical path: CNK %.4f%%, FWK %.4f%%\n"
    (100.0 *. s_cnk) (100.0 *. s_fwk);
  if s_fwk > s_cnk then begin
    Printf.printf "OK: the FWK critical path blames a larger tick+daemon share\n";
    0
  end
  else begin
    Printf.printf "FAIL: expected the FWK path to blame more tick+daemon time\n";
    1
  end

let message_lifecycle seed legacy =
  let cio = if legacy then Bg_cio.Reliable.off else Bg_cio.Reliable.default_on in
  let cluster = Cnk.Cluster.create ~dims:(1, 1, 1) ~seed ~cio () in
  let machine = Cnk.Cluster.machine cluster in
  enable_all machine;
  Cnk.Cluster.boot_all cluster;
  let entry () =
    let fd = Bg_rt.Libc.openf ~flags:Sysreq.o_create_trunc "/trace_tool.txt" in
    ignore (Bg_rt.Libc.write_string fd "causal tracer was here\n");
    Bg_rt.Libc.close fd
  in
  Cnk.Cluster.run_job cluster
    (Job.create ~name:"lifecycle" (Image.executable ~name:"lifecycle" entry));
  let g = Machine.causal machine in
  (match Causal.last_matching g ~cat:"cio" ~name:"reply.deliver" with
  | None -> failwith "message-lifecycle: no reply delivery in the causal graph"
  | Some c ->
    let path = Causal.critical_path g c in
    Printf.printf "lifecycle of the last function-shipped request (%s transport):\n"
      (if legacy then "legacy" else "reliable");
    print_path path);
  let edges = Causal.edges g in
  let count k = List.length (List.filter (fun e -> e.Causal.kind = k) edges) in
  Printf.printf "edges: %d request->reply, %d send->recv, %d parent->child\n"
    (count Causal.Request_reply) (count Causal.Send_recv) (count Causal.Parent_child);
  Printf.printf "graph: %d nodes, %d edges, %d dropped\n" (Causal.node_count g)
    (Causal.edge_count g) (Causal.dropped g);
  Printf.printf "causal digest=%s\n" (Bg_engine.Fnv.to_hex (Causal.digest g));
  0

let nodes_arg = Arg.(value & opt int 32 & info [ "nodes" ] ~doc:"Node count.")

let iters_arg =
  Arg.(value & opt int 8 & info [ "iterations" ] ~doc:"Allreduce iterations.")

let work_arg =
  Arg.(
    value
    & opt int 850_000
    & info [ "work" ] ~doc:"Per-iteration compute (cycles) between allreduces.")

let seed_arg = Arg.(value & opt int64 1L & info [ "seed" ] ~doc:"Machine seed.")

let chrome_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "chrome-trace" ]
        ~doc:"Write the FWK run as Chrome trace JSON with causal flow arrows.")

let legacy_arg =
  Arg.(value & flag & info [ "legacy" ] ~doc:"Use the legacy lossless CIO transport.")

let cmds =
  [
    Cmd.v
      (Cmd.info "critical-path"
         ~doc:
           "Run a seeded allreduce under CNK and FWK with causal tracing live, walk \
            the critical path to the last delivery and attribute every cycle on it.")
      Term.(const critical_path $ nodes_arg $ iters_arg $ work_arg $ seed_arg $ chrome_arg);
    Cmd.v
      (Cmd.info "message-lifecycle"
         ~doc:
           "Trace one function-shipped I/O request end to end and print its causal \
            chain.")
      Term.(const message_lifecycle $ seed_arg $ legacy_arg);
  ]

let () =
  exit (Cmd.eval' (Cmd.group (Cmd.info "trace_tool" ~doc:"Causal trace analysis") cmds))
