(* export_data — dump the figures' raw series as CSV, for plotting with
   gnuplot/matplotlib outside the simulator.

     dune exec bin/export_data.exe -- --out results
   writes:
     results/fig5_linux_fwq.csv     (iteration, cycles per core)
     results/fig6_cnk_fwq.csv
     results/fig8_bandwidth.csv     (bytes, contiguous MB/s, paged MB/s)
     results/table1_latency.csv
     results/noise_scaling.csv
     results/collectives.csv
     results/obs_metrics.csv       (instrumented CNK FWQ run)
     results/obs_trace.json        (Chrome trace-event of the same run)
     results/health_series.csv     (windowed health-service rollups)
     results/recovery_timeline.csv (self-healing policy decisions)
     results/sched_slo.csv         (per-tenant SLO bill, one row per
                                    tenant per scheduling policy) *)

open Cmdliner
module Noise = Bg_noise

let write_csv dir name header rows =
  let path = Filename.concat dir name in
  let oc = open_out path in
  output_string oc (header ^ "\n");
  List.iter (fun row -> output_string oc (row ^ "\n")) rows;
  close_out oc;
  Printf.printf "wrote %s (%d rows)\n%!" path (List.length rows)

let fwq_rows (r : Noise.Fwq_harness.report) =
  let threads = r.Noise.Fwq_harness.threads in
  let n =
    List.fold_left
      (fun acc t -> min acc (Array.length t.Noise.Fwq_harness.samples))
      max_int threads
  in
  List.init n (fun i ->
      string_of_int i
      ^ ","
      ^ String.concat ","
          (List.map (fun t -> string_of_int t.Noise.Fwq_harness.samples.(i)) threads))

let export_fwq dir samples =
  let cnk = Noise.Fwq_harness.run_on_cnk ~samples () in
  let fwk = Noise.Fwq_harness.run_on_fwk ~samples ~noise_seed:42L () in
  let header = "iteration,core0,core1,core2,core3" in
  write_csv dir "fig5_linux_fwq.csv" header (fwq_rows fwk);
  write_csv dir "fig6_cnk_fwq.csv" header (fwq_rows cnk)

let export_bandwidth dir =
  let measure ~bytes ~contiguous =
    let cluster = Cnk.Cluster.create ~dims:(4, 4, 4) () in
    Cnk.Cluster.boot_all cluster;
    let fabric = Bg_msg.Dcmf.make_fabric (Cnk.Cluster.machine cluster) in
    let entry, collect =
      Bg_apps.Stencil.exchange_program ~fabric ~rank:0 ~bytes ~contiguous
    in
    List.iter
      (fun r -> ignore (Bg_msg.Dcmf.attach fabric ~rank:r))
      (0 :: Bg_apps.Stencil.neighbors_of (Cnk.Cluster.machine cluster) ~rank:0);
    Cnk.Cluster.run_job cluster ~ranks:[ 0 ]
      (Job.create ~name:"bw" (Image.executable ~name:"bw" entry));
    collect ()
  in
  let sizes = [ 512; 2048; 8192; 32_768; 131_072; 524_288; 2_097_152; 4_194_304 ] in
  write_csv dir "fig8_bandwidth.csv" "bytes,contiguous_mbps,paged_mbps"
    (List.map
       (fun bytes ->
         Printf.sprintf "%d,%.1f,%.1f" bytes
           (measure ~bytes ~contiguous:true)
           (measure ~bytes ~contiguous:false))
       sizes)

let export_scaling dir =
  let rows =
    List.map
      (fun nodes ->
        let f profile =
          Noise.Scaling.allreduce_slowdown ~nodes ~iterations:300 ~work_cycles:850_000
            ~profile ~seed:11L
        in
        Printf.sprintf "%d,%.5f,%.5f" nodes (f Noise.Scaling.Quiet)
          (f Noise.Scaling.Linux_daemons))
      [ 1; 4; 16; 64; 256; 1024; 4096; 16_384; 65_536 ]
  in
  write_csv dir "noise_scaling.csv" "nodes,cnk_slowdown,linux_slowdown" rows

let export_collectives dir =
  let cluster = Cnk.Cluster.create ~dims:(2, 2, 2) () in
  Cnk.Cluster.boot_all cluster;
  let fabric = Bg_msg.Dcmf.make_fabric (Cnk.Cluster.machine cluster) in
  for r = 0 to 7 do
    ignore (Bg_msg.Dcmf.attach fabric ~rank:r)
  done;
  let coll = Bg_msg.Mpi.Coll.create fabric ~participants:8 in
  let rows =
    List.map
      (fun elements ->
        Printf.sprintf "%d,%.2f,%.2f" elements
          (Bg_engine.Cycles.to_us
             (Bg_msg.Mpi.Coll.estimate_vector_cycles coll Bg_msg.Mpi.Coll.Tree ~elements))
          (Bg_engine.Cycles.to_us
             (Bg_msg.Mpi.Coll.estimate_vector_cycles coll Bg_msg.Mpi.Coll.Torus ~elements)))
      [ 1; 8; 64; 512; 4096; 32_768; 262_144; 2_097_152 ]
  in
  write_csv dir "collectives.csv" "elements,tree_us,torus_us" rows

(* One instrumented CNK FWQ run: the syscall/cio/tlb/scheduler breakdown
   behind the figures, as both a metrics CSV and a Chrome trace. *)
let export_obs dir samples =
  let cluster = Cnk.Cluster.create ~dims:(1, 1, 1) () in
  let obs = Machine.obs (Cnk.Cluster.machine cluster) in
  Bg_obs.Obs.set_enabled obs true;
  Cnk.Cluster.boot_all cluster;
  let sched = Bg_control.Scheduler.create cluster in
  let entry, _ = Bg_apps.Fwq.program ~samples ~threads:4 () in
  ignore
    (Bg_control.Scheduler.submit sched ~shape:(1, 1, 1)
       (Job.create ~name:"fwq" (Image.executable ~name:"fwq" entry)));
  Bg_control.Scheduler.drain sched;
  let metrics = Filename.concat dir "obs_metrics.csv" in
  Bg_obs.Export.to_file ~path:metrics (Bg_obs.Export.metrics_csv obs);
  Printf.printf "wrote %s\n%!" metrics;
  let trace = Filename.concat dir "obs_trace.json" in
  Bg_obs.Export.to_file ~path:trace (Bg_obs.Export.chrome_trace obs);
  Printf.printf "wrote %s\n%!" trace

(* The same instrumented run through the machine health service: every
   windowed rollup point the sampler pushed, one row per point — the
   raw series behind a health dashboard. *)
let export_health dir samples =
  let module Ts = Bg_obs.Timeseries in
  let cluster = Cnk.Cluster.create ~dims:(1, 1, 1) () in
  let machine = Cnk.Cluster.machine cluster in
  let h = Machine.attach_health ~window:100_000 machine in
  Cnk.Cluster.boot_all cluster;
  let sched = Bg_control.Scheduler.create cluster in
  let entry, _ = Bg_apps.Fwq.program ~samples ~threads:4 () in
  ignore
    (Bg_control.Scheduler.submit sched ~shape:(1, 1, 1)
       (Job.create ~name:"fwq" (Image.executable ~name:"fwq" entry)));
  Bg_control.Scheduler.drain sched;
  let ts = h.Machine.h_ts in
  let rows =
    List.concat_map
      (fun (id : Ts.id) ->
        let k = id.Ts.key in
        List.map
          (fun (p : Ts.point) ->
            Printf.sprintf "%s,%s,%d,%d,%s,%d,%d,%.17g" k.Bg_obs.Obs.subsystem
              k.Bg_obs.Obs.name k.Bg_obs.Obs.rank k.Bg_obs.Obs.core
              (Ts.kind_name id.Ts.kind) p.Ts.window p.Ts.at p.Ts.v)
          (Ts.points ts id))
      (Ts.ids ts)
  in
  write_csv dir "health_series.csv"
    "subsystem,name,rank,core,kind,window,at_cycle,value" rows

(* The self-healing control plane's decision timeline under a small
   chaos scenario: one checkpointing job, one node death, a spare in the
   pool — every policy decision as a (cycle, action) row, the series
   behind an MTTR/recovery storyboard. *)
let export_recovery_timeline dir =
  let module Ctl = Bg_control in
  let module Res = Bg_resilience in
  let module Sim = Bg_engine.Sim in
  let cluster = Cnk.Cluster.create ~dims:(4, 1, 1) ~seed:1L () in
  Cnk.Cluster.boot_all cluster;
  let fabric = Bg_msg.Dcmf.make_fabric (Cnk.Cluster.machine cluster) in
  let sched = Ctl.Scheduler.create cluster in
  Ctl.Partition.set_spare (Ctl.Scheduler.partition sched) ~rank:3 true;
  let inj = Res.Injector.attach cluster in
  let policy = Res.Policy.attach sched in
  let spec =
    {
      Res.Ckpt.name = "export";
      steps = 30;
      step_cycles = 20_000;
      state_bytes = 4096;
      ckpt_every = 2;
      full_every = 1;
      strategy = Res.Ckpt.Parity_inplace;
    }
  in
  let factory, _ = Res.Ckpt.job_factory ~fabric spec in
  ignore
    (Ctl.Scheduler.submit_factory sched ~restart_limit:3 ~shape:(2, 1, 1) factory);
  ignore
    (Sim.schedule_at (Cnk.Cluster.sim cluster) 2_600_000 (fun () ->
         Res.Injector.inject_now inj (Res.Fault_event.Node_death { rank = 0 })));
  Ctl.Scheduler.drain sched;
  write_csv dir "recovery_timeline.csv" "cycle,action"
    (List.map
       (fun (cycle, line) -> Printf.sprintf "%d,%s" cycle line)
       (Res.Policy.timeline policy))

let export_sched_slo dir =
  let module W = Bg_sched.Workload in
  let module Svc = Bg_sched.Service in
  let module Strat = Bg_sched.Strategy in
  let module Slo = Bg_sched.Slo in
  (* one small seeded stream per policy; every tenant's SLO bill lands
     as CSV rows keyed (policy, seed, tenant) *)
  let rows_for kind =
    let cluster =
      Cnk.Cluster.create ~dims:(4, 4, 4) ~seed:1L ~nodes_per_io_node:8 ()
    in
    let machine = Cnk.Cluster.machine cluster in
    Bg_obs.Obs.set_enabled machine.Machine.obs true;
    Cnk.Cluster.boot_all cluster;
    let specs =
      W.generate ~seed:1L (W.mixed_tenants ~tenants:8 ~jobs_per_tenant:8)
    in
    let svc = Svc.create ~kind cluster specs in
    Svc.run svc;
    let strat = Svc.strategy svc in
    Slo.csv_rows
      (Slo.collect machine.Machine.obs ~tenants:(Svc.tenants_of specs)
         ~policy:(Strat.kind_name kind) ~seed:1 ~total_nodes:64
         ~makespan:(Svc.makespan svc) ~backfilled:(Strat.backfilled strat)
         ~gangs_started:(Strat.gangs_started strat) ())
  in
  write_csv dir "sched_slo.csv" Slo.csv_header
    (List.concat_map rows_for Strat.all_kinds)

let export_table1 dir =
  (* static decomposition straight from the calibration constants *)
  let rows =
    [
      Printf.sprintf "DCMF Put,0.9,%d" Bg_msg.Msg_params.put_sw;
      Printf.sprintf "DCMF Get,1.6,%d" Bg_msg.Msg_params.get_request_sw;
      Printf.sprintf "DCMF Eager One-way,1.6,%d" Bg_msg.Msg_params.eager_send_sw;
      Printf.sprintf "ARMCI blocking Put,2.0,%d" Bg_msg.Msg_params.armci_put_overhead;
      Printf.sprintf "MPI Eager One-way,2.4,%d" Bg_msg.Msg_params.mpi_send_overhead;
      Printf.sprintf "ARMCI blocking Get,3.3,%d" Bg_msg.Msg_params.armci_get_overhead;
      Printf.sprintf "MPI Rendezvous One-way,5.6,%d" Bg_msg.Msg_params.rndv_rts_sw;
    ]
  in
  write_csv dir "table1_latency.csv" "protocol,paper_us,sw_overhead_cycles" rows

let run out samples =
  (try Unix.mkdir out 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ());
  export_fwq out samples;
  export_bandwidth out;
  export_scaling out;
  export_collectives out;
  export_table1 out;
  export_obs out (min samples 2_000);
  export_health out (min samples 2_000);
  export_recovery_timeline out;
  export_sched_slo out;
  Printf.printf "all series exported to %s/\n" out

let cmd =
  let out = Arg.(value & opt string "results" & info [ "out"; "o" ] ~doc:"Output directory.") in
  let samples = Arg.(value & opt int 12_000 & info [ "samples" ] ~doc:"FWQ samples.") in
  Cmd.v
    (Cmd.info "export_data" ~doc:"Export figure series as CSV")
    Term.(const run $ out $ samples)

let () = exit (Cmd.eval cmd)
