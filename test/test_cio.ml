(* Tests for Bg_cio: the in-memory filesystem's POSIX semantics, the
   function-ship wire protocol, ioproxy fd-table behaviour, and an
   end-to-end CIOD round trip over the collective network. *)

open Bg_engine
open Bg_kabi
open Bg_cio

let check_int = Alcotest.(check int)

let errno : Errno.t Alcotest.testable =
  Alcotest.testable Errno.pp Errno.equal

let ok = function Ok v -> v | Error e -> Alcotest.failf "errno %s" (Errno.to_string e)

(* read-write create+truncate, for tests that write then read back *)
let o_rwct = { Sysreq.o_rdwr with Sysreq.creat = true; trunc = true }

let expect_err expected = function
  | Ok _ -> Alcotest.fail "expected error"
  | Error e -> Alcotest.check errno "errno" expected e

(* ------------------------------------------------------------------ *)
(* Fs *)

let test_fs_create_write_read () =
  let fs = Fs.create () in
  let i = ok (Fs.open_file fs ~cwd:"/" "data.txt" ~flags:Sysreq.o_create_trunc ~mode:0o644) in
  check_int "written" 5 (ok (Fs.write fs i ~offset:0 (Bytes.of_string "hello")));
  Alcotest.(check string) "read back" "hello"
    (Bytes.to_string (ok (Fs.read fs i ~offset:0 ~len:100)))

let test_fs_read_past_eof () =
  let fs = Fs.create () in
  let i = ok (Fs.open_file fs ~cwd:"/" "f" ~flags:Sysreq.o_create_trunc ~mode:0o644) in
  ignore (ok (Fs.write fs i ~offset:0 (Bytes.of_string "abc")));
  Alcotest.(check string) "eof" "" (Bytes.to_string (ok (Fs.read fs i ~offset:3 ~len:10)));
  Alcotest.(check string) "short" "c" (Bytes.to_string (ok (Fs.read fs i ~offset:2 ~len:10)))

let test_fs_sparse_write_zero_fills () =
  let fs = Fs.create () in
  let i = ok (Fs.open_file fs ~cwd:"/" "f" ~flags:Sysreq.o_create_trunc ~mode:0o644) in
  ignore (ok (Fs.write fs i ~offset:10 (Bytes.of_string "x")));
  check_int "size" 11 (Fs.size fs i);
  check_int "hole is zero" 0 (Bytes.get_uint8 (ok (Fs.read fs i ~offset:0 ~len:1)) 0)

let test_fs_enoent () =
  let fs = Fs.create () in
  expect_err Errno.ENOENT (Fs.resolve fs ~cwd:"/" "/missing")

let test_fs_mkdir_and_paths () =
  let fs = Fs.create () in
  ok (Fs.mkdir fs ~cwd:"/" "a" ~mode:0o755);
  ok (Fs.mkdir fs ~cwd:"/" "/a/b" ~mode:0o755);
  let i = ok (Fs.open_file fs ~cwd:"/a/b" "c.txt" ~flags:Sysreq.o_create_trunc ~mode:0o600) in
  ignore (ok (Fs.write fs i ~offset:0 (Bytes.of_string "deep")));
  (* Same file through a convoluted path. *)
  let j = ok (Fs.resolve fs ~cwd:"/" "/a/./b/../b//c.txt") in
  Alcotest.(check string) "path normalization" "deep"
    (Bytes.to_string (ok (Fs.read fs j ~offset:0 ~len:4)))

let test_fs_dotdot_above_root () =
  let fs = Fs.create () in
  ok (Fs.mkdir fs ~cwd:"/" "a" ~mode:0o755);
  let i = ok (Fs.resolve fs ~cwd:"/" "/../../a") in
  Alcotest.(check bool) "resolved" true (Fs.is_dir fs i)

let test_fs_enotdir () =
  let fs = Fs.create () in
  let _ = ok (Fs.open_file fs ~cwd:"/" "f" ~flags:Sysreq.o_create_trunc ~mode:0o644) in
  expect_err Errno.ENOTDIR (Fs.resolve fs ~cwd:"/" "/f/child")

let test_fs_rmdir_semantics () =
  let fs = Fs.create () in
  ok (Fs.mkdir fs ~cwd:"/" "d" ~mode:0o755);
  let _ = ok (Fs.open_file fs ~cwd:"/d" "f" ~flags:Sysreq.o_create_trunc ~mode:0o644) in
  expect_err Errno.ENOTEMPTY (Fs.rmdir fs ~cwd:"/" "d");
  ok (Fs.unlink fs ~cwd:"/" "/d/f");
  ok (Fs.rmdir fs ~cwd:"/" "d");
  expect_err Errno.ENOENT (Fs.resolve fs ~cwd:"/" "/d")

let test_fs_unlink_dir_rejected () =
  let fs = Fs.create () in
  ok (Fs.mkdir fs ~cwd:"/" "d" ~mode:0o755);
  expect_err Errno.EISDIR (Fs.unlink fs ~cwd:"/" "d")

let test_fs_readdir_sorted () =
  let fs = Fs.create () in
  List.iter
    (fun n -> ignore (ok (Fs.open_file fs ~cwd:"/" n ~flags:Sysreq.o_create_trunc ~mode:0o644)))
    [ "zeta"; "alpha"; "mid" ];
  Alcotest.(check (list string)) "sorted" [ "alpha"; "mid"; "zeta" ]
    (ok (Fs.readdir fs ~cwd:"/" "/"))

let test_fs_rename_replaces () =
  let fs = Fs.create () in
  let a = ok (Fs.open_file fs ~cwd:"/" "a" ~flags:Sysreq.o_create_trunc ~mode:0o644) in
  ignore (ok (Fs.write fs a ~offset:0 (Bytes.of_string "AAA")));
  let b = ok (Fs.open_file fs ~cwd:"/" "b" ~flags:Sysreq.o_create_trunc ~mode:0o644) in
  ignore (ok (Fs.write fs b ~offset:0 (Bytes.of_string "BBB")));
  ok (Fs.rename fs ~cwd:"/" ~src:"a" ~dst:"b");
  expect_err Errno.ENOENT (Fs.resolve fs ~cwd:"/" "/a");
  let b' = ok (Fs.resolve fs ~cwd:"/" "/b") in
  Alcotest.(check string) "content moved" "AAA"
    (Bytes.to_string (ok (Fs.read fs b' ~offset:0 ~len:3)))

let test_fs_truncate () =
  let fs = Fs.create () in
  let i = ok (Fs.open_file fs ~cwd:"/" "f" ~flags:Sysreq.o_create_trunc ~mode:0o644) in
  ignore (ok (Fs.write fs i ~offset:0 (Bytes.of_string "0123456789")));
  ok (Fs.truncate fs i ~len:4);
  check_int "shrunk" 4 (Fs.size fs i);
  ok (Fs.truncate fs i ~len:8);
  check_int "grown" 8 (Fs.size fs i);
  let tail = ok (Fs.read fs i ~offset:4 ~len:4) in
  Alcotest.(check string) "zero filled" "\000\000\000\000" (Bytes.to_string tail)

let test_fs_open_excl () =
  let fs = Fs.create () in
  let flags = { Sysreq.o_create_trunc with Sysreq.excl = true } in
  let _ = ok (Fs.open_file fs ~cwd:"/" "f" ~flags ~mode:0o644) in
  expect_err Errno.EEXIST (Fs.open_file fs ~cwd:"/" "f" ~flags ~mode:0o644)

let test_fs_stat () =
  let fs = Fs.create () in
  let i = ok (Fs.open_file fs ~cwd:"/" "f" ~flags:Sysreq.o_create_trunc ~mode:0o640) in
  ignore (ok (Fs.write fs i ~offset:0 (Bytes.make 42 'x')));
  let st = Fs.stat fs i in
  check_int "size" 42 st.Sysreq.st_size;
  check_int "perm" 0o640 st.Sysreq.st_perm;
  Alcotest.(check bool) "regular" true (st.Sysreq.st_kind = Sysreq.Regular)

(* ------------------------------------------------------------------ *)
(* Proto *)

let hdr = { Proto.rank = 7; pid = 2; tid = 19 }

let decode_req_exn data =
  match Proto.decode_request data with
  | Ok v -> v
  | Error e -> Alcotest.fail ("decode_request: " ^ Proto.error_message e)

let decode_reply_exn data =
  match Proto.decode_reply data with
  | Ok v -> v
  | Error e -> Alcotest.fail ("decode_reply: " ^ Proto.error_message e)

let roundtrip_req req =
  let hdr', req' = decode_req_exn (Proto.encode_request hdr req) in
  Alcotest.(check bool) "header" true (hdr' = hdr);
  req'

let test_proto_open_roundtrip () =
  match roundtrip_req (Sysreq.Open { path = "/x/y"; flags = Sysreq.o_rdwr; mode = 0o600 }) with
  | Sysreq.Open { path; flags; mode } ->
    Alcotest.(check string) "path" "/x/y" path;
    Alcotest.(check bool) "flags" true (flags = Sysreq.o_rdwr);
    check_int "mode" 0o600 mode
  | _ -> Alcotest.fail "wrong constructor"

let test_proto_write_roundtrip () =
  let payload = Bytes.of_string "the payload\000with nul" in
  match roundtrip_req (Sysreq.Write { fd = 5; data = payload }) with
  | Sysreq.Write { fd; data } ->
    check_int "fd" 5 fd;
    Alcotest.(check bytes) "data" payload data
  | _ -> Alcotest.fail "wrong constructor"

let test_proto_rejects_non_io () =
  Alcotest.(check bool) "raises" true
    (try
       ignore (Proto.encode_request hdr Sysreq.Getpid);
       false
     with Invalid_argument _ -> true)

let test_proto_reply_roundtrips () =
  let cases =
    [
      Sysreq.R_unit;
      Sysreq.R_int 42;
      Sysreq.R_bytes (Bytes.of_string "abc");
      Sysreq.R_stat { Sysreq.st_size = 9; st_kind = Sysreq.Directory; st_perm = 0o755 };
      Sysreq.R_names [ "a"; "b"; "c" ];
      Sysreq.R_string "/cwd";
      Sysreq.R_err Errno.ENOENT;
    ]
  in
  List.iter
    (fun reply ->
      let hdr', reply' = decode_reply_exn (Proto.encode_reply hdr reply) in
      Alcotest.(check bool) "header" true (hdr' = hdr);
      Alcotest.(check bool) "reply" true (reply = reply'))
    cases

let gen_io_request =
  let open QCheck.Gen in
  let str = string_size ~gen:(char_range 'a' 'z') (1 -- 30) in
  let byts = map Bytes.of_string (string_size (0 -- 200)) in
  oneof
    [
      map (fun p -> Sysreq.Stat p) str;
      map (fun p -> Sysreq.Unlink p) str;
      map (fun p -> Sysreq.Rmdir p) str;
      map (fun p -> Sysreq.Readdir p) str;
      map (fun p -> Sysreq.Chdir p) str;
      map (fun fd -> Sysreq.Close fd) (0 -- 1000);
      map (fun fd -> Sysreq.Dup fd) (0 -- 1000);
      map (fun fd -> Sysreq.Fsync fd) (0 -- 1000);
      map2 (fun fd len -> Sysreq.Read { fd; len }) (0 -- 1000) (0 -- 100000);
      map2 (fun fd data -> Sysreq.Write { fd; data }) (0 -- 1000) byts;
      map2
        (fun fd offset -> Sysreq.Lseek { fd; offset; whence = Sysreq.Seek_cur })
        (0 -- 1000) (0 -- 100000);
      map2 (fun src dst -> Sysreq.Rename { src; dst }) str str;
      map2 (fun path mode -> Sysreq.Mkdir { path; mode }) str (0 -- 0o777);
      return Sysreq.Getcwd;
    ]

let prop_proto_roundtrip =
  QCheck.Test.make ~name:"proto request encode/decode is the identity" ~count:500
    (QCheck.make gen_io_request)
    (fun req ->
      match Proto.decode_request (Proto.encode_request hdr req) with
      | Ok (_, req') -> req = req'
      | Error _ -> false)

(* ------------------------------------------------------------------ *)
(* Ioproxy *)

let test_ioproxy_fd_lifecycle () =
  let fs = Fs.create () in
  let p = Ioproxy.create fs ~rank:0 ~pid:1 in
  let fd =
    Sysreq.expect_int
      (Ioproxy.handle p (Sysreq.Open { path = "f"; flags = o_rwct; mode = 0o644 }))
  in
  check_int "first fd is 3" 3 fd;
  check_int "written" 3
    (Sysreq.expect_int (Ioproxy.handle p (Sysreq.Write { fd; data = Bytes.of_string "abc" })));
  (* Sequential read uses the proxy-side offset, currently at EOF. *)
  ignore (Sysreq.expect_int (Ioproxy.handle p (Sysreq.Lseek { fd = 3; offset = 0; whence = Sysreq.Seek_set })));
  Alcotest.(check string) "read" "abc"
    (Bytes.to_string (Sysreq.expect_bytes (Ioproxy.handle p (Sysreq.Read { fd; len = 10 }))));
  Sysreq.expect_unit (Ioproxy.handle p (Sysreq.Close fd));
  (match Ioproxy.handle p (Sysreq.Read { fd; len = 1 }) with
  | Sysreq.R_err Errno.EBADF -> ()
  | _ -> Alcotest.fail "expected EBADF");
  check_int "no fds" 0 (Ioproxy.open_fds p)

let test_ioproxy_offset_mirrors_process_state () =
  let fs = Fs.create () in
  let p = Ioproxy.create fs ~rank:0 ~pid:1 in
  let fd =
    Sysreq.expect_int
      (Ioproxy.handle p (Sysreq.Open { path = "f"; flags = o_rwct; mode = 0o644 }))
  in
  ignore (Ioproxy.handle p (Sysreq.Write { fd; data = Bytes.of_string "0123456789" }));
  ignore (Ioproxy.handle p (Sysreq.Lseek { fd; offset = 2; whence = Sysreq.Seek_set }));
  Alcotest.(check string) "seek state lives in proxy" "234"
    (Bytes.to_string (Sysreq.expect_bytes (Ioproxy.handle p (Sysreq.Read { fd; len = 3 }))));
  Alcotest.(check string) "sequential continue" "567"
    (Bytes.to_string (Sysreq.expect_bytes (Ioproxy.handle p (Sysreq.Read { fd; len = 3 }))))

let test_ioproxy_cwd () =
  let fs = Fs.create () in
  let p = Ioproxy.create fs ~rank:0 ~pid:1 in
  ignore (Ioproxy.handle p (Sysreq.Mkdir { path = "/work"; mode = 0o755 }));
  Sysreq.expect_unit (Ioproxy.handle p (Sysreq.Chdir "/work"));
  Alcotest.(check string) "getcwd" "/work"
    (Sysreq.expect_string (Ioproxy.handle p Sysreq.Getcwd));
  let fd =
    Sysreq.expect_int
      (Ioproxy.handle p (Sysreq.Open { path = "rel"; flags = Sysreq.o_create_trunc; mode = 0o644 }))
  in
  ignore fd;
  (* File was created relative to the new cwd. *)
  Alcotest.(check bool) "relative resolve" true
    (match Fs.resolve fs ~cwd:"/" "/work/rel" with Ok _ -> true | Error _ -> false)

let test_ioproxy_dup_shares_nothing_after () =
  let fs = Fs.create () in
  let p = Ioproxy.create fs ~rank:0 ~pid:1 in
  let fd =
    Sysreq.expect_int
      (Ioproxy.handle p (Sysreq.Open { path = "f"; flags = o_rwct; mode = 0o644 }))
  in
  ignore (Ioproxy.handle p (Sysreq.Write { fd; data = Bytes.of_string "xyz" }));
  let fd2 = Sysreq.expect_int (Ioproxy.handle p (Sysreq.Dup fd)) in
  Alcotest.(check bool) "new fd" true (fd2 <> fd);
  (* Our dup copies the offset at dup time (simplification: independent
     offsets afterwards). *)
  ignore (Ioproxy.handle p (Sysreq.Lseek { fd = fd2; offset = 0; whence = Sysreq.Seek_set }));
  Alcotest.(check string) "read via dup" "xyz"
    (Bytes.to_string (Sysreq.expect_bytes (Ioproxy.handle p (Sysreq.Read { fd = fd2; len = 3 }))))

let test_ioproxy_non_io_enosys () =
  let fs = Fs.create () in
  let p = Ioproxy.create fs ~rank:0 ~pid:1 in
  match Ioproxy.handle p Sysreq.Getpid with
  | Sysreq.R_err Errno.ENOSYS -> ()
  | _ -> Alcotest.fail "expected ENOSYS"

(* ------------------------------------------------------------------ *)
(* Ciod end-to-end *)

let test_ciod_round_trip () =
  let machine = Machine.create ~dims:(2, 1, 1) () in
  let ciod = Ciod.create machine ~io_node:0 () in
  let delivered = ref None in
  Ciod.register_node ciod ~rank:0 ~deliver:(fun b -> delivered := Some b);
  Ciod.job_start ciod ~rank:0 ~pids:[ 1 ];
  check_int "proxy created" 1 (Ciod.proxy_count ciod);
  let req =
    Proto.encode_request { Proto.rank = 0; pid = 1; tid = 1 }
      (Sysreq.Open { path = "out"; flags = Sysreq.o_create_trunc; mode = 0o644 })
  in
  (* Model the uplink transit, then submission. *)
  Bg_hw.Collective_net.to_io_node machine.Machine.collective ~cn:0 ~payload:req
    ~on_arrival:(fun ~payload ~arrival_cycle:_ -> Ciod.submit ciod payload);
  ignore (Sim.run machine.Machine.sim);
  (match !delivered with
  | None -> Alcotest.fail "no reply delivered"
  | Some b ->
    let hdr', reply = decode_reply_exn b in
    check_int "tid routed back" 1 hdr'.Proto.tid;
    check_int "fd" 3 (Sysreq.expect_int reply));
  check_int "served" 1 (Ciod.requests_served ciod);
  Alcotest.(check bool) "reply took time" true (Sim.now machine.Machine.sim > 0)

let test_ciod_many_nodes_one_fs_client () =
  (* 16 compute nodes write through one CIOD: all writes land in one
     filesystem, and service is serialized over the 4 I/O-node workers. *)
  let machine = Machine.create ~dims:(4, 2, 2) () in
  let ciod = Ciod.create machine ~io_node:0 () in
  let replies = ref 0 in
  for rank = 0 to 15 do
    Ciod.register_node ciod ~rank ~deliver:(fun _ -> incr replies)
  done;
  for rank = 0 to 15 do
    let req =
      Proto.encode_request { Proto.rank; pid = 1; tid = 1 }
        (Sysreq.Open { path = Printf.sprintf "f%d" rank; flags = Sysreq.o_create_trunc; mode = 0o644 })
    in
    Bg_hw.Collective_net.to_io_node machine.Machine.collective ~cn:rank ~payload:req
      ~on_arrival:(fun ~payload ~arrival_cycle:_ -> Ciod.submit ciod payload)
  done;
  ignore (Sim.run machine.Machine.sim);
  check_int "all replied" 16 !replies;
  check_int "16 files on the single client" 16
    (List.length (ok (Fs.readdir (Ciod.fs ciod) ~cwd:"/" "/")))

let test_ciod_job_end_closes () =
  let machine = Machine.create ~dims:(2, 1, 1) () in
  let ciod = Ciod.create machine ~io_node:0 () in
  Ciod.job_start ciod ~rank:0 ~pids:[ 1; 2 ];
  Ciod.job_start ciod ~rank:1 ~pids:[ 1 ];
  check_int "three proxies" 3 (Ciod.proxy_count ciod);
  Ciod.job_end ciod ~rank:0;
  check_int "rank 1 remains" 1 (Ciod.proxy_count ciod)

(* ------------------------------------------------------------------ *)

let qcheck = List.map QCheck_alcotest.to_alcotest [ prop_proto_roundtrip ]

let suite =
  [
    Alcotest.test_case "fs: create/write/read" `Quick test_fs_create_write_read;
    Alcotest.test_case "fs: read past eof" `Quick test_fs_read_past_eof;
    Alcotest.test_case "fs: sparse write zero fills" `Quick test_fs_sparse_write_zero_fills;
    Alcotest.test_case "fs: enoent" `Quick test_fs_enoent;
    Alcotest.test_case "fs: mkdir + path normalization" `Quick test_fs_mkdir_and_paths;
    Alcotest.test_case "fs: .. above root" `Quick test_fs_dotdot_above_root;
    Alcotest.test_case "fs: enotdir" `Quick test_fs_enotdir;
    Alcotest.test_case "fs: rmdir semantics" `Quick test_fs_rmdir_semantics;
    Alcotest.test_case "fs: unlink dir rejected" `Quick test_fs_unlink_dir_rejected;
    Alcotest.test_case "fs: readdir sorted" `Quick test_fs_readdir_sorted;
    Alcotest.test_case "fs: rename replaces" `Quick test_fs_rename_replaces;
    Alcotest.test_case "fs: truncate" `Quick test_fs_truncate;
    Alcotest.test_case "fs: O_EXCL" `Quick test_fs_open_excl;
    Alcotest.test_case "fs: stat" `Quick test_fs_stat;
    Alcotest.test_case "proto: open roundtrip" `Quick test_proto_open_roundtrip;
    Alcotest.test_case "proto: write roundtrip" `Quick test_proto_write_roundtrip;
    Alcotest.test_case "proto: rejects non-io" `Quick test_proto_rejects_non_io;
    Alcotest.test_case "proto: reply roundtrips" `Quick test_proto_reply_roundtrips;
    Alcotest.test_case "ioproxy: fd lifecycle" `Quick test_ioproxy_fd_lifecycle;
    Alcotest.test_case "ioproxy: offsets mirror process" `Quick
      test_ioproxy_offset_mirrors_process_state;
    Alcotest.test_case "ioproxy: cwd" `Quick test_ioproxy_cwd;
    Alcotest.test_case "ioproxy: dup" `Quick test_ioproxy_dup_shares_nothing_after;
    Alcotest.test_case "ioproxy: non-io ENOSYS" `Quick test_ioproxy_non_io_enosys;
    Alcotest.test_case "ciod: round trip" `Quick test_ciod_round_trip;
    Alcotest.test_case "ciod: aggregation to one client" `Quick
      test_ciod_many_nodes_one_fs_client;
    Alcotest.test_case "ciod: job end closes" `Quick test_ciod_job_end_closes;
  ]
  @ qcheck
