(* Tests for the scheduler-as-a-service layer: workload generation
   (seeded, tenant-isolated substreams), the indexed job queue, the
   torus-aware placer, the pluggable strategy invariants (EASY head
   reservation, gang all-or-none, fair-share weighting), completion-
   event idempotence under a full queue, and the linear-scan guard. *)

open Bg_kabi
module Ctl = Bg_control
module Sch = Bg_control.Scheduler
module Jobq = Bg_control.Jobq
module Sim = Bg_engine.Sim
module Workload = Bg_sched.Workload
module Placer = Bg_sched.Placer
module Strategy = Bg_sched.Strategy
module Service = Bg_sched.Service
module Slo = Bg_sched.Slo

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let mk_cluster ?(seed = 11L) dims =
  let cluster = Cnk.Cluster.create ~dims ~seed ~nodes_per_io_node:4 () in
  Cnk.Cluster.boot_all cluster;
  cluster

(* Small images keep load time (~1 cycle/byte on the collective net)
   small next to the runtimes these tests reason about. *)
let factory ~name ~runtime ~ranks:_ =
  Job.create ~name
    (Image.executable ~name ~text_bytes:(8 * 1024) ~data_bytes:(8 * 1024) (fun () ->
         Coro.consume runtime))

(* ------------------------------------------------------------------ *)
(* Workload generation *)

let test_workload_deterministic () =
  let tenants = Workload.mixed_tenants ~tenants:8 ~jobs_per_tenant:5 in
  let a = Workload.generate ~seed:42L tenants in
  let b = Workload.generate ~seed:42L tenants in
  check_int "count" (8 * 5) (List.length a);
  check_bool "same seed, same stream" true (a = b);
  let c = Workload.generate ~seed:43L tenants in
  check_bool "different seed, different stream" true (a <> c)

(* The satellite regression: a tenant's stream is a pure function of
   (seed, tenant record) — adding or removing *another* tenant must not
   perturb it, including its gang ids. *)
let test_workload_tenant_isolation () =
  let tenants = Workload.mixed_tenants ~tenants:9 ~jobs_per_tenant:6 in
  let removed = List.nth tenants 4 in
  let fewer =
    List.filter (fun t -> t.Workload.name <> removed.Workload.name) tenants
  in
  let project specs =
    List.filter_map
      (fun (s : Workload.spec) ->
        if s.Workload.tenant_name = removed.Workload.name then None
        else
          Some
            ( s.Workload.tenant_name,
              s.Workload.seq,
              s.Workload.arrival,
              s.Workload.nodes,
              s.Workload.runtime,
              s.Workload.walltime,
              s.Workload.comm,
              s.Workload.gang ))
      specs
  in
  let all = project (Workload.generate ~seed:7L tenants) in
  let without = project (Workload.generate ~seed:7L fewer) in
  check_bool "survivors' streams unperturbed" true (all = without)

let test_workload_gang_bursts () =
  let t =
    {
      Workload.name = "ia";
      weight = 2;
      jobs = 9;
      mean_interarrival = 100_000.;
      nodes_lo = 1;
      nodes_hi = 1;
      runtime_lo = 10_000;
      runtime_hi = 20_000;
      comm_fraction = 0.;
      runaway_fraction = 0.;
      cls = Workload.Interactive_cls;
      gang_size = 3;
    }
  in
  let specs = Workload.generate ~seed:5L [ t ] in
  check_int "9 jobs" 9 (List.length specs);
  let by_gang = Hashtbl.create 4 in
  List.iter
    (fun (s : Workload.spec) ->
      match s.Workload.gang with
      | None -> Alcotest.fail "gang tenant produced an untagged job"
      | Some g ->
        Hashtbl.replace by_gang g
          (s.Workload.arrival
          :: (try Hashtbl.find by_gang g with Not_found -> [])))
    specs;
  check_int "three bursts" 3 (Hashtbl.length by_gang);
  Hashtbl.iter
    (fun _ arrivals ->
      check_int "burst of three" 3 (List.length arrivals);
      match arrivals with
      | a :: rest -> List.iter (fun b -> check_int "burst shares arrival" a b) rest
      | [] -> ())
    by_gang

(* ------------------------------------------------------------------ *)
(* Indexed job queue *)

let test_jobq_order_and_removal () =
  let q = Jobq.create () in
  List.iter (fun k -> Jobq.append q ~key:k (k * 10)) [ 1; 2; 3; 4; 5 ];
  check_int "length" 5 (Jobq.length q);
  check_bool "mem" true (Jobq.mem q 3);
  check_bool "remove returns the value" true (Jobq.remove q 3 = Some 30);
  check_bool "removed" false (Jobq.mem q 3);
  check_bool "order preserved" true (Jobq.keys q = [ 1; 2; 4; 5 ]);
  Jobq.push_front q ~key:9 90;
  check_bool "push_front heads the line" true (Jobq.keys q = [ 9; 1; 2; 4; 5 ]);
  (match Jobq.peek q with
  | Some (k, v) ->
    check_int "peek key" 9 k;
    check_int "peek value" 90 v
  | None -> Alcotest.fail "peek on non-empty queue");
  check_bool "duplicate key rejected" true
    (try
       Jobq.append q ~key:9 99;
       false
     with Invalid_argument _ -> true)

let test_jobq_iter_safe_against_removal () =
  let q = Jobq.create () in
  List.iter (fun k -> Jobq.append q ~key:k k) [ 1; 2; 3; 4; 5; 6 ];
  (* remove the current node mid-iteration, like shed_backfill does *)
  Jobq.iter q (fun k _ -> if k mod 2 = 0 then ignore (Jobq.remove q k));
  check_bool "odd keys survive" true (Jobq.keys q = [ 1; 3; 5 ])

(* ------------------------------------------------------------------ *)
(* Placer *)

let test_placer_compactness () =
  let dims = (4, 4, 4) in
  (match Placer.shapes_for ~dims ~nodes:8 with
  | (2, 2, 2) :: _ -> ()
  | s :: _ ->
    let a, b, c = s in
    Alcotest.fail (Printf.sprintf "8 nodes not cubic first: (%d,%d,%d)" a b c)
  | [] -> Alcotest.fail "no shapes for 8 nodes");
  check_bool "canonical 16 = (2,2,4)" true
    (Placer.canonical_shape ~dims ~nodes:16 = Some (2, 2, 4));
  check_bool "7 nodes cannot fit 4x4x4" true
    (Placer.shapes_for ~dims ~nodes:7 = []);
  check_int "placeable rounds 7 down to 6" 6 (Service.placeable_nodes ~dims 7)

let test_placer_scores_congestion () =
  let cluster = mk_cluster (4, 1, 1) in
  let machine = Cnk.Cluster.machine cluster in
  let torus = machine.Machine.torus in
  let sim = Cnk.Cluster.sim cluster in
  (* soak the links out of ranks 0 and 1 with traffic, leave 2-3 quiet *)
  for _ = 1 to 8 do
    Bg_hw.Torus.transfer torus ~src:0 ~dst:1 ~bytes:65536 ();
    Bg_hw.Torus.transfer torus ~src:1 ~dst:2 ~bytes:65536 ()
  done;
  ignore (Sim.run sim);
  let p = Ctl.Partition.create ~dims:(4, 1, 1) in
  let busy = Placer.congestion_score torus p ~base:(0, 0, 0) ~shape:(2, 1, 1) in
  let quiet = Placer.congestion_score torus p ~base:(2, 0, 0) ~shape:(2, 1, 1) in
  check_bool "traffic raises the score" true (busy > quiet);
  match Placer.place torus p ~nodes:2 ~comm:true with
  | Some { Placer.base = Some (2, 0, 0); _ } -> ()
  | Some { Placer.base; _ } ->
    Alcotest.fail
      (match base with
      | Some (x, y, z) -> Printf.sprintf "comm job placed at (%d,%d,%d)" x y z
      | None -> "comm job got no scored base")
  | None -> Alcotest.fail "nothing placed"

(* ------------------------------------------------------------------ *)
(* Strategy invariants *)

let test_easy_head_reservation () =
  let cluster = mk_cluster ~seed:21L (2, 2, 1) in
  let sim = Cnk.Cluster.sim cluster in
  let sched = Sch.create cluster in
  let strat = Strategy.install Strategy.Easy sched in
  let starts = Hashtbl.create 4 in
  Sch.on_job_start sched (fun jid ~ranks:_ ->
      Hashtbl.replace starts jid (Sim.now sim));
  let j0 =
    Sch.submit_factory sched ~est_cycles:400_000 ~shape:(2, 1, 1)
      (factory ~name:"wide0" ~runtime:300_000)
  in
  Sch.kick sched;
  let j1 =
    Sch.submit_factory sched ~est_cycles:200_000 ~shape:(2, 2, 1)
      (factory ~name:"head" ~runtime:100_000)
  in
  let j2 =
    Sch.submit_factory sched ~est_cycles:100_000 ~shape:(1, 1, 1)
      (factory ~name:"filler" ~runtime:50_000)
  in
  Sch.drain sched;
  check_bool "filler was backfilled" true (Strategy.backfilled strat >= 1);
  let start jid =
    match Hashtbl.find_opt starts jid with
    | Some c -> c
    | None -> Alcotest.fail (Printf.sprintf "job %d never started" jid)
  in
  (match Strategy.reservation strat j1 with
  | None -> Alcotest.fail "blocked head got no reservation"
  | Some shadow ->
    check_bool
      (Printf.sprintf "head started at %d, reserved for %d" (start j1) shadow)
      true
      (start j1 <= shadow));
  check_bool "backfill actually jumped the line" true (start j2 < start j1);
  check_bool "everything completed" true
    (List.for_all
       (fun j -> match Sch.state sched j with Sch.Completed _ -> true | _ -> false)
       [ j0; j1; j2 ])

let test_gang_all_or_none () =
  let cluster = mk_cluster ~seed:22L (2, 2, 1) in
  let sim = Cnk.Cluster.sim cluster in
  let sched = Sch.create cluster in
  let strat = Strategy.install Strategy.Gang sched in
  let starts = Hashtbl.create 4 in
  Sch.on_job_start sched (fun jid ~ranks:_ ->
      Hashtbl.replace starts jid (Sim.now sim));
  let blocker =
    Sch.submit_factory sched ~est_cycles:400_000 ~shape:(2, 1, 1)
      (factory ~name:"blocker" ~runtime:300_000)
  in
  Sch.kick sched;
  let members =
    List.init 3 (fun i ->
        Sch.submit_factory sched ~gang:7 ~est_cycles:100_000 ~shape:(1, 1, 1)
          (factory ~name:(Printf.sprintf "gang%d" i) ~runtime:50_000))
  in
  (* mid-run probe: two nodes are free, but a 3-wide gang must not run
     partially — all or none *)
  ignore
    (Sim.schedule_at sim 150_000 (fun () ->
         List.iter
           (fun j ->
             match Sch.state sched j with
             | Sch.Running _ -> Alcotest.fail "gang member ran without its gang"
             | _ -> ())
           members));
  Sch.drain sched;
  check_int "one gang co-scheduled" 1 (Strategy.gangs_started strat);
  let cycles =
    List.map
      (fun j ->
        match Hashtbl.find_opt starts j with
        | Some c -> c
        | None -> Alcotest.fail "gang member never started")
      members
  in
  (match cycles with
  | c :: rest -> List.iter (fun c' -> check_int "gang starts together" c c') rest
  | [] -> ());
  check_bool "blocker finished first" true
    (match Sch.state sched blocker with Sch.Completed _ -> true | _ -> false)

let test_fair_share_weights () =
  let cluster = mk_cluster ~seed:23L (2, 2, 1) in
  let sim = Cnk.Cluster.sim cluster in
  let sched = Sch.create cluster in
  let config =
    {
      Strategy.comm_of = (fun _ -> false);
      weight_of = (fun tid -> if tid = 0 then 3 else 1);
    }
  in
  ignore (Strategy.install ~config Strategy.Fair sched);
  let done_at = Hashtbl.create 32 in
  Sch.on_job_done sched (fun jid _ -> Hashtbl.replace done_at jid (Sim.now sim));
  let tenant_of = Hashtbl.create 32 in
  (* equal backlogs, interleaved submission: only the weights differ *)
  let submit tenant i =
    let jid =
      Sch.submit_factory sched ~tenant ~est_cycles:150_000 ~shape:(1, 1, 1)
        (factory ~name:(Printf.sprintf "t%d.%d" tenant i) ~runtime:100_000)
    in
    Hashtbl.replace tenant_of jid tenant
  in
  for i = 0 to 15 do
    submit 0 i;
    submit 1 i
  done;
  (* mid-run probe: service delivered so far (completed ledger + live
     progress of running jobs) should lean toward the weight-3 tenant *)
  let probe = ref (0, 0) in
  ignore
    (Sim.schedule_at sim 700_000 (fun () ->
         let live = Hashtbl.create 4 in
         List.iter
           (fun (r : Sch.running_info) ->
             match r.Sch.run_info.Sch.info_tenant with
             | Some tid ->
               let sx, sy, sz = r.Sch.run_info.Sch.info_shape in
               let prev = try Hashtbl.find live tid with Not_found -> 0 in
               Hashtbl.replace live tid
                 (prev + ((Sim.now sim - r.Sch.run_started) * (sx * sy * sz)))
             | None -> ())
           (Sch.running_info sched);
         let total tid =
           Sch.tenant_usage sched tid
           + (try Hashtbl.find live tid with Not_found -> 0)
         in
         probe := (total 0, total 1)));
  Sch.drain sched;
  let heavy, light = !probe in
  check_bool "probe saw service" true (heavy > 0 && light > 0);
  let ratio = float_of_int heavy /. float_of_int light in
  check_bool
    (Printf.sprintf "weight-3 tenant got %.2fx the service (want 2.0-4.5)" ratio)
    true
    (ratio >= 2.0 && ratio <= 4.5);
  (* and the heavier tenant's jobs finish earlier on average *)
  let mean tid =
    let sum, n =
      Hashtbl.fold
        (fun jid t (sum, n) ->
          if Hashtbl.find tenant_of jid = tid then (sum + t, n + 1) else (sum, n))
        done_at (0, 0)
    in
    float_of_int sum /. float_of_int (max n 1)
  in
  check_bool "weighted tenant finishes earlier" true (mean 0 < mean 1)

(* ------------------------------------------------------------------ *)
(* Completion-event idempotence under a full queue *)

let test_duplicate_completions_idempotent () =
  let cluster = mk_cluster ~seed:24L (2, 1, 1) in
  let sched = Sch.create cluster in
  let j0 =
    Sch.submit_factory sched ~shape:(2, 1, 1) (factory ~name:"live" ~runtime:50_000)
  in
  Sch.kick sched;
  (* wedge the queue shut so releases cannot relaunch onto the nodes *)
  Sch.set_shape_cap sched (Some (1, 1, 1));
  let queued =
    List.init 3 (fun i ->
        Sch.submit_factory sched ~shape:(2, 1, 1)
          (factory ~name:(Printf.sprintf "q%d" i) ~runtime:10_000))
  in
  check_int "queue is full" 3 (Sch.pending_count sched);
  (* first report from rank 0: job keeps running on rank 1 *)
  Sch.member_completed sched j0 ~rank:0;
  check_bool "half-reported job still running" true
    (match Sch.state sched j0 with Sch.Running _ -> true | _ -> false);
  (* control-network replay of the same event: dropped, counted *)
  Sch.member_completed sched j0 ~rank:0;
  check_int "replay counted" 1 (Sch.duplicate_completions sched);
  check_bool "replay did not complete the job" true
    (match Sch.state sched j0 with Sch.Running _ -> true | _ -> false);
  Sch.member_completed sched j0 ~rank:1;
  check_bool "all ranks reported: completed" true
    (match Sch.state sched j0 with Sch.Completed _ -> true | _ -> false);
  check_int "partition released once" 2
    (Ctl.Partition.free_nodes (Sch.partition sched));
  (* replay after the job is gone: dropped too *)
  Sch.member_completed sched j0 ~rank:1;
  check_int "late replay counted" 2 (Sch.duplicate_completions sched);
  check_int "queue untouched" 3 (Sch.pending_count sched);
  List.iter
    (fun j ->
      check_bool "queued job still queued" true
        (match Sch.state sched j with Sch.Queued -> true | _ -> false))
    queued

(* ------------------------------------------------------------------ *)
(* Scan-cost guard *)

(* The indexed queue keeps the kick path linear: draining [n] jobs
   through a 1-node machine must visit O(n) queue nodes in total, not
   O(n^2) as a scan-the-whole-queue-per-kick implementation would. *)
let test_scan_visits_stay_linear () =
  let cluster = mk_cluster ~seed:25L (1, 1, 1) in
  let sched = Sch.create cluster in
  let n = 300 in
  for i = 0 to n - 1 do
    ignore
      (Sch.submit_factory sched ~shape:(1, 1, 1)
         (factory ~name:(Printf.sprintf "s%d" i) ~runtime:2_000))
  done;
  Sch.drain sched;
  check_int "all drained" 0 (Sch.outstanding sched);
  let visits = Sch.scan_visits sched in
  check_bool
    (Printf.sprintf "scan visits %d for %d jobs (quadratic would be ~%d)" visits n
       (n * n / 2))
    true
    (visits <= 4 * n)

(* ------------------------------------------------------------------ *)
(* Service end to end *)

let test_service_deterministic_slo () =
  let run () =
    let cluster = mk_cluster ~seed:26L (2, 2, 1) in
    let obs = Machine.obs (Cnk.Cluster.machine cluster) in
    Bg_obs.Obs.set_enabled obs true;
    let specs =
      Workload.generate ~seed:26L
        (Workload.mixed_tenants ~tenants:4 ~jobs_per_tenant:3)
    in
    let svc = Service.create ~kind:Strategy.Fcfs cluster specs in
    Service.run svc;
    let slo =
      Slo.collect obs
        ~tenants:(Service.tenants_of specs)
        ~policy:"fcfs" ~seed:26 ~total_nodes:4 ~makespan:(Service.makespan svc) ()
    in
    (slo, Service.offered svc)
  in
  let slo_a, offered_a = run () in
  let slo_b, _ = run () in
  check_int "all arrivals offered" 12 offered_a;
  check_int "every job billed" 12
    (slo_a.Slo.completed_total + slo_a.Slo.failed_total);
  check_bool "same seed, same bill" true
    (Bg_engine.Fnv.equal (Slo.digest slo_a) (Slo.digest slo_b))

let suite =
  [
    ("workload: same seed, same stream", `Quick, test_workload_deterministic);
    ("workload: tenant substreams isolated", `Quick, test_workload_tenant_isolation);
    ("workload: gang bursts share arrival", `Quick, test_workload_gang_bursts);
    ("jobq: order and O(1) removal", `Quick, test_jobq_order_and_removal);
    ("jobq: iteration survives removal", `Quick, test_jobq_iter_safe_against_removal);
    ("placer: compact shapes first", `Quick, test_placer_compactness);
    ("placer: congestion steers placement", `Quick, test_placer_scores_congestion);
    ("easy: head reservation never delayed", `Quick, test_easy_head_reservation);
    ("gang: all-or-none co-scheduling", `Quick, test_gang_all_or_none);
    ("fair: weighted shares within tolerance", `Quick, test_fair_share_weights);
    ( "scheduler: duplicate completions idempotent",
      `Quick,
      test_duplicate_completions_idempotent );
    ("scheduler: scan visits stay linear", `Quick, test_scan_visits_stay_linear);
    ("service: same-seed SLO bill reproduces", `Quick, test_service_deterministic_slo);
  ]
