(* Tests for the resilience subsystem (paper §V.B, §VI): deterministic
   fault injection, typed RAS events, scheduler-driven recovery with
   down-node exclusion, and the coordinated checkpoint/restart service —
   including the CNK-parity-vs-FWK-rollback cost asymmetry. *)

open Bg_engine
open Bg_kabi
module Ctl = Bg_control
module Res = Bg_resilience
module Obs = Bg_obs.Obs

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

(* ------------------------------------------------------------------ *)
(* Typed fault events *)

let test_fault_event_roundtrip () =
  (* every constructor, both values of every bool *)
  let events =
    [
      Res.Fault_event.L1_parity { rank = 3; core = 2 };
      Res.Fault_event.Node_death { rank = 17 };
      Res.Fault_event.Link_failure { rank = 5; dir = 4 };
      Res.Fault_event.Link_repair { rank = 5; dir = 4 };
      Res.Fault_event.Ciod_crash { io_node = 7; fatal = false };
      Res.Fault_event.Ciod_crash { io_node = 7; fatal = true };
      Res.Fault_event.Ciod_restart { io_node = 2 };
    ]
  in
  List.iter
    (fun e ->
      match Res.Fault_event.of_message (Res.Fault_event.to_message e) with
      | Some got -> check_bool "roundtrip" true (got = e)
      | None -> Alcotest.fail "event failed to parse back")
    events;
  check_bool "free-form RAS text is not an event" true
    (Res.Fault_event.of_message "L1 parity error on core 2" = None);
  check_bool "prefix alone is not an event" true
    (Res.Fault_event.of_message "FAULT something else" = None);
  check_bool "health alerts are not fault events" true
    (Res.Fault_event.of_message
       "HEALTH alert rule=r series=cio.retransmits:rate rank=0 core=-1 \
        window=3 value=12 threshold=10"
    = None)

let test_fault_event_parse_never_raises () =
  (* The RAS channel is shared with free-form kernel logs: of_message
     must answer None for arbitrary garbage, never raise. Deterministic
     fuzz — an LCG over printable bytes plus structured near-misses. *)
  let state = ref 0x2545F4914F6CDD1DL in
  let next_int bound =
    state := Int64.add (Int64.mul !state 6364136223846793005L) 1442695040888963407L;
    Int64.to_int (Int64.logand (Int64.shift_right_logical !state 33) 0x3FFFFFFFL)
    mod bound
  in
  let random_string () =
    String.init (next_int 40) (fun _ -> Char.chr (32 + next_int 95))
  in
  let near_misses =
    [
      ""; "FAULT"; "FAULT "; "FAULT parity"; "FAULT parity rank=";
      "FAULT parity rank=x core=y"; "FAULT node_death rank=1 extra";
      "FAULT link rank=1"; "FAULT ciod_crash io=1 fatal=maybe";
      "FAULT ciod_crash io=99999999999999999999 fatal=1";
      "FAULT parity rank=-1 core=-1"; "fault parity rank=1 core=1";
      "FAULT  parity rank=1 core=1"; "FAULT parity rank=1 core=1 ";
    ]
  in
  let probe s = ignore (Res.Fault_event.of_message s) in
  List.iter probe near_misses;
  for _ = 1 to 500 do
    probe (random_string ());
    probe ("FAULT " ^ random_string ())
  done;
  check_bool "no parse ever raised" true true

(* ------------------------------------------------------------------ *)
(* Down nodes in the allocator *)

let test_partition_down_nodes () =
  let p = Ctl.Partition.create ~dims:(4, 1, 1) in
  Ctl.Partition.set_down p ~rank:1 true;
  check_int "down node leaves the pool" 3 (Ctl.Partition.free_nodes p);
  Alcotest.(check (list int)) "down list" [ 1 ] (Ctl.Partition.down_nodes p);
  (* (2,1,1) must land at 2..3: rank 1 is dead and rank 0 alone is too thin *)
  (match Ctl.Partition.allocate p ~shape:(2, 1, 1) with
  | Ok a -> Alcotest.(check (list int)) "skips the dead node" [ 2; 3 ] a.Ctl.Partition.ranks
  | Error e -> Alcotest.fail e);
  (match Ctl.Partition.allocate p ~shape:(2, 1, 1) with
  | Ok _ -> Alcotest.fail "allocated across a down node"
  | Error _ -> ());
  Ctl.Partition.set_down p ~rank:1 false;
  check_bool "revived node fits again" true
    (Result.is_ok (Ctl.Partition.allocate p ~shape:(2, 1, 1)))

(* ------------------------------------------------------------------ *)
(* Dirty-page tracking *)

let test_dirty_tracking () =
  let tr =
    Cnk.Mmap_tracker.create ~base:0x1000_0000 ~bytes:(8 * 1024 * 1024)
      ~main_stack_bytes:(1024 * 1024)
  in
  check_bool "clean at birth" true (Cnk.Mmap_tracker.dirty_ranges tr = []);
  Cnk.Mmap_tracker.mark_dirty tr ~addr:0x1000_0000 ~len:8;
  Cnk.Mmap_tracker.mark_dirty tr ~addr:0x1000_1000 ~len:4096;
  (* adjacent pages coalesce *)
  Alcotest.(check (list (pair int int)))
    "coalesced" [ (0x1000_0000, 8192) ]
    (Cnk.Mmap_tracker.dirty_ranges tr);
  Cnk.Mmap_tracker.mark_dirty tr ~addr:0x1010_0000 ~len:1;
  check_int "two ranges" 2 (List.length (Cnk.Mmap_tracker.dirty_ranges tr));
  check_int "dirty bytes" (3 * 4096) (Cnk.Mmap_tracker.dirty_bytes tr);
  (* out-of-range stores are not state *)
  Cnk.Mmap_tracker.mark_dirty tr ~addr:0x10 ~len:8;
  check_int "clamped" 2 (List.length (Cnk.Mmap_tracker.dirty_ranges tr));
  Cnk.Mmap_tracker.clear_dirty tr;
  check_bool "clear forgets" true (Cnk.Mmap_tracker.dirty_ranges tr = [])

(* ------------------------------------------------------------------ *)
(* Satellite: walltime kill publishes a RAS event *)

let test_walltime_publishes_ras () =
  let cluster = Cnk.Cluster.create ~dims:(2, 1, 1) () in
  Cnk.Cluster.boot_all cluster;
  let ras = Ctl.Ras.attach (Cnk.Cluster.machine cluster) in
  let s = Ctl.Scheduler.create cluster in
  let runaway =
    Job.create ~name:"runaway"
      (Image.executable ~name:"runaway" (fun () -> Coro.consume 1_000_000_000))
  in
  let jid = Ctl.Scheduler.submit s ~walltime_cycles:2_000_000 ~shape:(2, 1, 1) runaway in
  Ctl.Scheduler.drain s;
  let expect = Printf.sprintf "SCHED walltime job=%d rank=0" jid in
  check_bool "walltime kill is on the RAS channel" true
    (List.exists
       (fun (e : Ctl.Ras.event) ->
         e.severity = Machine.Ras_warn
         && String.length e.message >= String.length expect
         && String.sub e.message 0 (String.length expect) = expect)
       (Ctl.Ras.events ras))

(* ------------------------------------------------------------------ *)
(* Satellite: checkpoint restore refuses mismatched regions *)

let test_checkpoint_region_mismatch () =
  let ok = ref false in
  let cluster = Cnk.Cluster.create ~dims:(1, 1, 1) () in
  Cnk.Cluster.boot_all cluster;
  let image =
    Image.executable ~name:"mismatch" (fun () ->
        let a = Bg_rt.Libc.sbrk 8192 in
        Bg_rt.Libc.poke a 41;
        Bg_rt.Libc.poke (a + 4096) 42;
        ignore (Bg_apps.Checkpoint.save ~name:"mm" ~regions:[ (a, 8192) ]);
        Bg_rt.Libc.poke a 1000;
        (* wrong length *)
        let r1 = Bg_apps.Checkpoint.restore ~name:"mm" ~regions:[ (a, 4096) ] in
        (* wrong region count *)
        let r2 =
          Bg_apps.Checkpoint.restore ~name:"mm" ~regions:[ (a, 4096); (a + 4096, 4096) ]
        in
        let untouched = Bg_rt.Libc.peek a = 1000 in
        (* the exact list restores fine *)
        let r3 = Bg_apps.Checkpoint.restore ~name:"mm" ~regions:[ (a, 8192) ] in
        ok :=
          r1 = Error Bg_apps.Checkpoint.Region_mismatch
          && r2 = Error Bg_apps.Checkpoint.Region_mismatch
          && untouched && r3 = Ok () && Bg_rt.Libc.peek a = 41
          && Bg_rt.Libc.peek (a + 4096) = 42)
  in
  Cnk.Cluster.run_job cluster (Job.create ~name:"mm" image);
  check_bool "mismatch is explicit and leaves memory alone" true !ok

(* ------------------------------------------------------------------ *)
(* Satellite: Persist.clear (cold boot) and same-VA re-open *)

let test_persist_clear_and_same_va () =
  let cluster = Cnk.Cluster.create ~dims:(1, 1, 1) () in
  Cnk.Cluster.boot_all cluster;
  let node = Cnk.Cluster.node cluster 0 in
  let va1 = ref 0 and va2 = ref 0 and seen = ref 0 and va3 = ref 0 in
  let job1 =
    Image.executable ~name:"p1" (fun () ->
        va1 := Bg_rt.Libc.shm_open_persistent ~name:"table" ~length:4096;
        Bg_rt.Libc.poke !va1 7777)
  in
  Cnk.Cluster.run_job cluster (Job.create ~name:"p1" job1);
  let job2 =
    Image.executable ~name:"p2" (fun () ->
        va2 := Bg_rt.Libc.shm_open_persistent ~name:"table" ~length:4096;
        seen := Bg_rt.Libc.peek !va2)
  in
  Cnk.Cluster.run_job cluster (Job.create ~name:"p2" job2);
  check_int "same VA across jobs" !va1 !va2;
  check_int "contents survive the job boundary" 7777 !seen;
  (* cold boot without self-refresh: every name is forgotten *)
  Cnk.Persist.clear (Cnk.Node.persist node);
  check_bool "cleared table finds nothing" true
    (Cnk.Persist.find (Cnk.Node.persist node) ~name:"table" = None);
  check_int "no bytes in use" 0 (Cnk.Persist.used_bytes (Cnk.Node.persist node));
  let job3 =
    Image.executable ~name:"p3" (fun () ->
        va3 := Bg_rt.Libc.shm_open_persistent ~name:"table" ~length:4096)
  in
  Cnk.Cluster.run_job cluster (Job.create ~name:"p3" job3);
  check_int "allocator reset: same VA again" !va1 !va3

(* ------------------------------------------------------------------ *)
(* Checkpoint service harness *)

let ckpt_spec ?(strategy = Res.Ckpt.Parity_inplace) ?(steps = 12) ?(ckpt_every = 2)
    ?(state_bytes = 4096) ?(full_every = 1) () =
  {
    Res.Ckpt.name = "resil";
    steps;
    step_cycles = 20_000;
    state_bytes;
    ckpt_every;
    full_every;
    strategy;
  }

let check_outcomes spec outcomes ~ranks =
  check_int "one outcome per logical rank" ranks (List.length outcomes);
  List.iteri
    (fun i (o : Res.Ckpt.outcome) ->
      check_int "logical rank" i o.Res.Ckpt.rank_index;
      check_int "ran to the last step" spec.Res.Ckpt.steps o.Res.Ckpt.final_step;
      check_bool "state digest matches the host mirror" true
        (Fnv.equal o.Res.Ckpt.state_digest
           (Res.Ckpt.expected_digest spec ~rank_index:i)))
    outcomes

(* ------------------------------------------------------------------ *)
(* End to end: node death → detect → reallocate → restore → complete *)

let test_node_death_recovery () =
  let cluster = Cnk.Cluster.create ~dims:(4, 1, 1) () in
  Cnk.Cluster.boot_all cluster;
  let sim = Cnk.Cluster.sim cluster in
  let fabric = Bg_msg.Dcmf.make_fabric (Cnk.Cluster.machine cluster) in
  let sched = Ctl.Scheduler.create cluster in
  let inj = Res.Injector.attach cluster in
  let recov = Res.Recovery.attach sched in
  (* image load over the collective network gates thread start by ~2.1M
     cycles, so app steps run from ~2.2M on; kill rank 0 mid-workload,
     after several committed checkpoints *)
  let spec = ckpt_spec ~strategy:Res.Ckpt.Rollback ~steps:30 () in
  let factory, outcomes = Res.Ckpt.job_factory ~fabric spec in
  let jid = Ctl.Scheduler.submit_factory sched ~restart_limit:3 ~shape:(2, 1, 1) factory in
  ignore
    (Sim.schedule_at sim 2_600_000 (fun () ->
         Res.Injector.inject_now inj (Res.Fault_event.Node_death { rank = 0 })));
  Ctl.Scheduler.drain sched;
  (match Ctl.Scheduler.state sched jid with
  | Ctl.Scheduler.Completed _ -> ()
  | _ -> Alcotest.fail "job did not complete after the node death");
  check_int "one death handled" 1 (Res.Recovery.deaths_handled recov);
  check_int "one restart" 1 (Ctl.Scheduler.restarts sched jid);
  Alcotest.(check (list int)) "rank 0 marked down" [ 0 ]
    (Ctl.Partition.down_nodes (Ctl.Scheduler.partition sched));
  Alcotest.(check (list int)) "injector agrees" [ 0 ] (Res.Injector.dead_ranks inj);
  let outcomes = outcomes () in
  check_outcomes spec outcomes ~ranks:2;
  List.iter
    (fun (o : Res.Ckpt.outcome) ->
      check_bool "relaunched clear of the dead node" true (o.Res.Ckpt.machine_rank <> 0);
      check_bool "resumed from a committed checkpoint, not from scratch" true
        (o.Res.Ckpt.restored_step > 0))
    outcomes

(* ------------------------------------------------------------------ *)
(* Determinism: same seed, same fault campaign ⇒ identical trace digest *)

let test_fault_campaign_deterministic () =
  let run () =
    let cluster = Cnk.Cluster.create ~dims:(4, 1, 1) ~seed:11L () in
    Cnk.Cluster.boot_all cluster;
    let sim = Cnk.Cluster.sim cluster in
    let fabric = Bg_msg.Dcmf.make_fabric (Cnk.Cluster.machine cluster) in
    let sched = Ctl.Scheduler.create cluster in
    let inj =
      Res.Injector.attach
        ~config:
          {
            Res.Injector.default with
            Res.Injector.parity_mean = 150_000.;
            link_mean = 500_000.;
            horizon = 3_000_000;
          }
        cluster
    in
    ignore (Res.Recovery.attach sched);
    let spec = ckpt_spec ~strategy:Res.Ckpt.Parity_inplace () in
    let factory, outcomes = Res.Ckpt.job_factory ~fabric spec in
    let jid = Ctl.Scheduler.submit_factory sched ~restart_limit:4 ~shape:(2, 1, 1) factory in
    (* one scripted death on top of the Poisson parity/link streams *)
    ignore
      (Sim.schedule_at sim 2_500_000 (fun () ->
           Res.Injector.inject_now inj (Res.Fault_event.Node_death { rank = 1 })));
    Ctl.Scheduler.drain sched;
    let completion =
      match Ctl.Scheduler.state sched jid with
      | Ctl.Scheduler.Completed c -> c
      | _ -> -1
    in
    let digests =
      List.map (fun (o : Res.Ckpt.outcome) -> o.Res.Ckpt.state_digest) (outcomes ())
    in
    ( Fnv.to_hex (Trace.digest (Sim.trace (Cnk.Cluster.sim cluster))),
      completion,
      List.length (Res.Injector.injected inj),
      digests )
  in
  let d1, c1, n1, s1 = run () in
  let d2, c2, n2, s2 = run () in
  Alcotest.(check string) "bit-identical sim trace digest" d1 d2;
  check_int "same completion cycle" c1 c2;
  check_int "same fault count" n1 n2;
  check_bool "faults were actually injected" true (n1 > 0);
  check_bool "same state digests" true (s1 = s2)

(* ------------------------------------------------------------------ *)
(* The paper's cost asymmetry: CNK parity redo vs FWK-style rollback *)

let run_parity_workload strategy =
  let cluster = Cnk.Cluster.create ~dims:(1, 1, 1) () in
  Cnk.Cluster.boot_all cluster;
  let sim = Cnk.Cluster.sim cluster in
  let node = Cnk.Cluster.node cluster 0 in
  let fabric = Bg_msg.Dcmf.make_fabric (Cnk.Cluster.machine cluster) in
  let sched = Ctl.Scheduler.create cluster in
  ignore (Res.Recovery.attach sched);
  (* long step consumes so the fault lands inside a step, not a barrier *)
  let spec =
    { (ckpt_spec ~strategy ~steps:20 ~ckpt_every:5 ()) with Res.Ckpt.step_cycles = 100_000 }
  in
  let factory, outcomes = Res.Ckpt.job_factory ~fabric spec in
  let jid = Ctl.Scheduler.submit_factory sched ~restart_limit:4 ~shape:(1, 1, 1) factory in
  (* the same scripted transient fault for both strategies, timed between
     the first and second checkpoint commits; retry until it lands on a
     busy core so neither run quietly dodges it *)
  let rec inject at =
    ignore
      (Sim.schedule_at sim at (fun () ->
           if not (Cnk.Node.inject_l1_parity_error node ~core:0) then inject (at + 5_000)))
  in
  inject 2_900_000;
  Ctl.Scheduler.drain sched;
  let completion =
    match Ctl.Scheduler.state sched jid with
    | Ctl.Scheduler.Completed c -> c
    | _ -> Alcotest.fail "workload did not complete"
  in
  (completion, Ctl.Scheduler.restarts sched jid, outcomes ())

let test_parity_beats_rollback () =
  let cnk_done, cnk_restarts, cnk_out = run_parity_workload Res.Ckpt.Parity_inplace in
  let fwk_done, fwk_restarts, fwk_out = run_parity_workload Res.Ckpt.Rollback in
  let spec = ckpt_spec ~steps:20 ~ckpt_every:5 () in
  check_outcomes spec cnk_out ~ranks:1;
  check_outcomes spec fwk_out ~ranks:1;
  check_int "CNK recovers in place, no restart" 0 cnk_restarts;
  check_bool "FWK must roll back" true (fwk_restarts >= 1);
  check_bool "CNK redid at least one step" true
    ((List.hd cnk_out).Res.Ckpt.parity_redos >= 1);
  check_bool "rollback resumed from a checkpoint" true
    ((List.hd fwk_out).Res.Ckpt.restored_step > 0);
  check_bool
    (Printf.sprintf "in-place recovery is cheaper (cnk=%d fwk=%d)" cnk_done fwk_done)
    true (cnk_done < fwk_done)

(* ------------------------------------------------------------------ *)
(* Incremental checkpoints ship less than full ones *)

let test_delta_checkpoints_smaller () =
  let cluster = Cnk.Cluster.create ~dims:(1, 1, 1) () in
  Cnk.Cluster.boot_all cluster;
  let fs = Cnk.Cluster.fs cluster in
  let fabric = Bg_msg.Dcmf.make_fabric (Cnk.Cluster.machine cluster) in
  let sched = Ctl.Scheduler.create cluster in
  let spec =
    ckpt_spec ~steps:8 ~ckpt_every:2 ~state_bytes:(64 * 1024) ~full_every:4 ()
  in
  let factory, outcomes = Res.Ckpt.job_factory ~fabric spec in
  ignore (Ctl.Scheduler.submit_factory sched ~shape:(1, 1, 1) factory);
  Ctl.Scheduler.drain sched;
  check_outcomes spec (outcomes ()) ~ranks:1;
  let size path =
    match Bg_cio.Fs.resolve fs ~cwd:"/" path with
    | Ok ino -> Bg_cio.Fs.size fs ino
    | Error _ -> Alcotest.failf "missing %s" path
  in
  (* checkpoints at steps 2, 4, 6: v1 full, v2 and v3 dirty-page deltas *)
  let full = size "/ckpt/resil.r0.f1" in
  let d2 = size "/ckpt/resil.r0.d2" and d3 = size "/ckpt/resil.r0.d3" in
  check_bool "full image carries the whole state" true (full >= 64 * 1024);
  check_bool
    (Printf.sprintf "deltas are much smaller (full=%d d2=%d d3=%d)" full d2 d3)
    true
    (d2 > 0 && d3 > 0 && d2 * 4 < full && d3 * 4 < full)

let suite =
  [
    Alcotest.test_case "fault events: roundtrip" `Quick test_fault_event_roundtrip;
    Alcotest.test_case "fault events: parse never raises" `Quick
      test_fault_event_parse_never_raises;
    Alcotest.test_case "partition: down nodes excluded" `Quick test_partition_down_nodes;
    Alcotest.test_case "mmap tracker: dirty pages" `Quick test_dirty_tracking;
    Alcotest.test_case "scheduler: walltime kill hits RAS" `Quick
      test_walltime_publishes_ras;
    Alcotest.test_case "checkpoint: region mismatch is explicit" `Quick
      test_checkpoint_region_mismatch;
    Alcotest.test_case "persist: clear + same VA across jobs" `Quick
      test_persist_clear_and_same_va;
    Alcotest.test_case "recovery: node death end to end" `Quick test_node_death_recovery;
    Alcotest.test_case "fault campaign: deterministic" `Quick
      test_fault_campaign_deterministic;
    Alcotest.test_case "parity in place beats rollback" `Quick test_parity_beats_rollback;
    Alcotest.test_case "incremental checkpoints are smaller" `Quick
      test_delta_checkpoints_smaller;
  ]
