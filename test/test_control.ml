(* Tests for the control-system substrate: partition allocation invariants
   and the space-sharing job scheduler (FIFO + backfill). *)

open Bg_kabi
module Ctl = Bg_control

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

(* ------------------------------------------------------------------ *)
(* Partition *)

let test_partition_basic () =
  let p = Ctl.Partition.create ~dims:(4, 4, 4) in
  check_int "64 nodes" 64 (Ctl.Partition.total_nodes p);
  let a = Result.get_ok (Ctl.Partition.allocate p ~shape:(2, 2, 2)) in
  check_int "8 ranks" 8 (List.length a.Ctl.Partition.ranks);
  check_int "56 free" 56 (Ctl.Partition.free_nodes p);
  Ctl.Partition.release p a.Ctl.Partition.id;
  check_int "all free again" 64 (Ctl.Partition.free_nodes p)

let test_partition_disjoint () =
  let p = Ctl.Partition.create ~dims:(4, 4, 1) in
  let a = Result.get_ok (Ctl.Partition.allocate p ~shape:(2, 2, 1)) in
  let b = Result.get_ok (Ctl.Partition.allocate p ~shape:(2, 2, 1)) in
  let overlap =
    List.exists (fun r -> List.mem r b.Ctl.Partition.ranks) a.Ctl.Partition.ranks
  in
  check_bool "partitions are isolated" false overlap

let test_partition_exhaustion_and_reuse () =
  let p = Ctl.Partition.create ~dims:(2, 2, 1) in
  let a = Result.get_ok (Ctl.Partition.allocate p ~shape:(2, 2, 1)) in
  (match Ctl.Partition.allocate p ~shape:(1, 1, 1) with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "allocated on a full machine");
  Ctl.Partition.release p a.Ctl.Partition.id;
  check_bool "fits after release" true
    (Result.is_ok (Ctl.Partition.allocate p ~shape:(2, 2, 1)))

let test_partition_shape_too_big () =
  let p = Ctl.Partition.create ~dims:(4, 4, 1) in
  match Ctl.Partition.allocate p ~shape:(5, 1, 1) with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "oversized shape accepted"

let prop_partition_never_double_books =
  QCheck.Test.make ~name:"partition: live allocations never share a rank" ~count:100
    QCheck.(list_of_size Gen.(1 -- 25) (pair (int_range 1 3) (int_range 1 3)))
    (fun shapes ->
      let p = Ctl.Partition.create ~dims:(4, 4, 2) in
      let live = ref [] in
      List.iteri
        (fun i (sx, sy) ->
          (match Ctl.Partition.allocate p ~shape:(sx, sy, 1) with
          | Ok a -> live := a :: !live
          | Error _ -> ());
          (* release every third allocation to churn *)
          if i mod 3 = 2 then
            match !live with
            | a :: rest ->
              Ctl.Partition.release p a.Ctl.Partition.id;
              live := rest
            | [] -> ())
        shapes;
      let all = List.concat_map (fun a -> a.Ctl.Partition.ranks) !live in
      List.length all = List.length (List.sort_uniq compare all))

(* ------------------------------------------------------------------ *)
(* Scheduler *)

let quick_job name cycles ran =
  Job.create ~name
    (Image.executable ~name (fun () ->
         Coro.consume cycles;
         incr ran))

let test_scheduler_space_shares () =
  (* two 2-node jobs run concurrently on a 4-node machine *)
  let cluster = Cnk.Cluster.create ~dims:(4, 1, 1) () in
  Cnk.Cluster.boot_all cluster;
  let s = Ctl.Scheduler.create cluster in
  let ran = ref 0 in
  let j1 = Ctl.Scheduler.submit s ~shape:(2, 1, 1) (quick_job "a" 1_000_000 ran) in
  let j2 = Ctl.Scheduler.submit s ~shape:(2, 1, 1) (quick_job "b" 1_000_000 ran) in
  Ctl.Scheduler.drain s;
  check_int "both jobs ran on all their nodes" 4 !ran;
  (match (Ctl.Scheduler.state s j1, Ctl.Scheduler.state s j2) with
  | Ctl.Scheduler.Completed c1, Ctl.Scheduler.Completed c2 ->
    (* concurrent, not serial: completions within one job-length *)
    check_bool "overlapped in time" true (abs (c1 - c2) < 1_000_000)
  | _ -> Alcotest.fail "jobs not completed")

let test_scheduler_fifo_waits () =
  (* a full-machine job followed by a small one: FIFO keeps order *)
  let cluster = Cnk.Cluster.create ~dims:(2, 1, 1) () in
  Cnk.Cluster.boot_all cluster;
  let s = Ctl.Scheduler.create cluster in
  let ran = ref 0 in
  let big = Ctl.Scheduler.submit s ~shape:(2, 1, 1) (quick_job "big" 2_000_000 ran) in
  let small = Ctl.Scheduler.submit s ~shape:(1, 1, 1) (quick_job "small" 100_000 ran) in
  Ctl.Scheduler.drain s;
  Alcotest.(check (list int)) "completion order is submission order" [ big; small ]
    (Ctl.Scheduler.completed_order s)

let test_scheduler_backfill_overtakes () =
  (* machine 2 nodes: job A (1 node, long), job B (2 nodes, blocked while A
     runs), job C (1 node, short). Backfill lets C use the idle node. *)
  let cluster = Cnk.Cluster.create ~dims:(2, 1, 1) () in
  Cnk.Cluster.boot_all cluster;
  let s = Ctl.Scheduler.create ~backfill:true cluster in
  let ran = ref 0 in
  let a = Ctl.Scheduler.submit s ~shape:(1, 1, 1) (quick_job "a" 5_000_000 ran) in
  let b = Ctl.Scheduler.submit s ~shape:(2, 1, 1) (quick_job "b" 100_000 ran) in
  let c = Ctl.Scheduler.submit s ~shape:(1, 1, 1) (quick_job "c" 100_000 ran) in
  Ctl.Scheduler.drain s;
  (* c backfilled ahead of b *)
  Alcotest.(check (list int)) "backfill order" [ c; a; b ] (Ctl.Scheduler.completed_order s);
  check_int "every node of every job ran" 4 !ran

let test_scheduler_rejects_impossible () =
  let cluster = Cnk.Cluster.create ~dims:(2, 1, 1) () in
  Cnk.Cluster.boot_all cluster;
  let s = Ctl.Scheduler.create cluster in
  let ran = ref 0 in
  check_bool "impossible job rejected at submit" true
    (try
       ignore (Ctl.Scheduler.submit s ~shape:(3, 1, 1) (quick_job "x" 1 ran));
       false
     with Failure _ -> true)

let test_scheduler_survives_faulting_job () =
  let cluster = Cnk.Cluster.create ~dims:(2, 1, 1) () in
  Cnk.Cluster.boot_all cluster;
  let s = Ctl.Scheduler.create cluster in
  let ran = ref 0 in
  let crasher =
    Job.create ~name:"crash"
      (Image.executable ~name:"crash" (fun () ->
           let brk = Bg_rt.Libc.brk_now () in
           Coro.store ~addr:(brk + 8) (Bytes.of_string "boom")))
  in
  let a = Ctl.Scheduler.submit s ~shape:(2, 1, 1) crasher in
  let b = Ctl.Scheduler.submit s ~shape:(1, 1, 1) (quick_job "after" 50_000 ran) in
  Ctl.Scheduler.drain s;
  (* the crashing job completes (with faults) and releases its partition;
     the queue keeps moving *)
  Alcotest.(check (list int)) "both completed in order" [ a; b ]
    (Ctl.Scheduler.completed_order s);
  check_int "follow-up job ran" 1 !ran;
  check_bool "fault recorded where it happened" true
    (Cnk.Node.faults (Cnk.Cluster.node cluster 0) <> [])

let test_scheduler_walltime_kills_runaway () =
  let cluster = Cnk.Cluster.create ~dims:(2, 1, 1) () in
  Cnk.Cluster.boot_all cluster;
  let s = Ctl.Scheduler.create cluster in
  let ran = ref 0 in
  (* a job that would run ~1.2 s of simulated time without the limit *)
  let runaway =
    Job.create ~name:"runaway"
      (Image.executable ~name:"runaway" (fun () -> Coro.consume 1_000_000_000))
  in
  let a = Ctl.Scheduler.submit s ~walltime_cycles:5_000_000 ~shape:(2, 1, 1) runaway in
  let b = Ctl.Scheduler.submit s ~shape:(1, 1, 1) (quick_job "next" 50_000 ran) in
  Ctl.Scheduler.drain s;
  (match Ctl.Scheduler.state s a with
  | Ctl.Scheduler.Completed at -> check_bool "killed near the limit" true (at < 10_000_000)
  | _ -> Alcotest.fail "runaway not completed");
  check_int "queue kept moving" 1 !ran;
  (* exit code 137 recorded on a killed node (rank 1 ran nothing since) *)
  Alcotest.(check bool) "killed status" true
    (List.exists (fun (_, code) -> code = 137)
       (Cnk.Node.exit_codes (Cnk.Cluster.node cluster 1)));
  Alcotest.(check (list int)) "completion order" [ a; b ] (Ctl.Scheduler.completed_order s)

let test_scheduler_deterministic () =
  let run () =
    let cluster = Cnk.Cluster.create ~dims:(4, 1, 1) ~seed:3L () in
    Cnk.Cluster.boot_all cluster;
    let s = Ctl.Scheduler.create cluster in
    let ran = ref 0 in
    for i = 1 to 6 do
      ignore
        (Ctl.Scheduler.submit s ~shape:((i mod 2) + 1, 1, 1)
           (quick_job (Printf.sprintf "j%d" i) (100_000 * i) ran))
    done;
    Ctl.Scheduler.drain s;
    (Ctl.Scheduler.completed_order s, Bg_engine.Sim.now (Cnk.Cluster.sim cluster))
  in
  let o1, t1 = run () in
  let o2, t2 = run () in
  Alcotest.(check (list int)) "same schedule" o1 o2;
  check_int "same makespan" t1 t2

(* ------------------------------------------------------------------ *)
(* RAS log *)

let test_ras_collects_kernel_events () =
  let cluster = Cnk.Cluster.create ~dims:(1, 1, 1) () in
  let ras = Ctl.Ras.attach (Cnk.Cluster.machine cluster) in
  Cnk.Cluster.boot_all cluster;
  let image =
    Image.executable ~name:"crashy" (fun () ->
        let brk = Bg_rt.Libc.brk_now () in
        Coro.store ~addr:(brk + 8) (Bytes.of_string "smash"))
  in
  Cnk.Cluster.run_job cluster (Job.create ~name:"c" image);
  (* guard hit (warn) then unhandled-signal kill (error) *)
  check_bool "warn logged" true (Ctl.Ras.count ras ~severity:Machine.Ras_warn () >= 1);
  check_int "one error" 1 (List.length (Ctl.Ras.errors ras));
  (match Ctl.Ras.errors ras with
  | [ e ] ->
    check_int "rank attached" 0 e.Ctl.Ras.rank;
    check_bool "cycle attached" true (e.Ctl.Ras.cycle > 0)
  | _ -> Alcotest.fail "expected one error");
  check_int "by_rank sees them all" (Ctl.Ras.count ras ())
    (List.length (Ctl.Ras.by_rank ras ~rank:0))

let test_ras_l1_parity_warns () =
  let cluster = Cnk.Cluster.create ~dims:(1, 1, 1) () in
  let ras = Ctl.Ras.attach (Cnk.Cluster.machine cluster) in
  Cnk.Cluster.boot_all cluster;
  let node = Cnk.Cluster.node cluster 0 in
  let image =
    Image.executable ~name:"app" (fun () ->
        Sysreq.expect_unit
          (Coro.syscall (Sysreq.Sigaction { signo = 7; handler = Some (fun _ -> ()) }));
        Coro.consume 2_000_000)
  in
  (match Cnk.Node.launch node (Job.create ~name:"a" image) with
  | Ok () -> ()
  | Error e -> failwith e);
  ignore
    (Bg_engine.Sim.schedule_at (Cnk.Cluster.sim cluster) 2_600_000 (fun () ->
         ignore (Cnk.Node.inject_l1_parity_error node ~core:0)));
  Cnk.Cluster.run_until_quiet cluster;
  check_int "parity warn, no errors" 0 (List.length (Ctl.Ras.errors ras));
  check_bool "warn recorded" true
    (List.exists
       (fun e ->
         e.Ctl.Ras.severity = Machine.Ras_warn
         && String.length e.Ctl.Ras.message >= 2)
       (Ctl.Ras.events ras))

let test_ras_log_is_bounded () =
  let machine = Machine.create ~dims:(1, 1, 1) () in
  let ras = Ctl.Ras.attach ~capacity:8 machine in
  for i = 1 to 20 do
    let severity = if i mod 5 = 0 then Machine.Ras_error else Machine.Ras_info in
    Machine.ras_emit machine ~rank:0 ~severity
      ~message:(Printf.sprintf "storm %d" i)
  done;
  check_int "ring holds capacity" 8 (List.length (Ctl.Ras.events ras));
  check_int "overwritten accounted" 12 (Ctl.Ras.dropped ras);
  check_int "total count exact despite drops" 20 (Ctl.Ras.count ras ());
  check_int "per-severity count exact" 4
    (Ctl.Ras.count ras ~severity:Machine.Ras_error ());
  (match Ctl.Ras.events ras with
  | oldest :: _ ->
    Alcotest.(check string) "oldest retained is event 13" "storm 13"
      oldest.Ctl.Ras.message
  | [] -> Alcotest.fail "empty ring")

(* ------------------------------------------------------------------ *)
(* Torus link faults *)

let test_torus_reroutes_around_broken_link () =
  let machine = Machine.create ~dims:(4, 1, 1) () in
  let torus = machine.Machine.torus in
  check_int "healthy short path" 1 (Bg_hw.Torus.hops torus ~src:0 ~dst:1);
  (* break 0 -> +x *)
  Bg_hw.Torus.set_link_broken torus ~rank:0 ~dir:0 true;
  check_int "reroutes the long way" 3 (Bg_hw.Torus.hops torus ~src:0 ~dst:1);
  (* traffic still flows *)
  let arrived = ref false in
  Bg_hw.Torus.transfer torus ~src:0 ~dst:1 ~bytes:64
    ~on_arrival:(fun ~arrival_cycle:_ -> arrived := true)
    ();
  ignore (Bg_engine.Sim.run machine.Machine.sim);
  check_bool "delivered over the detour" true !arrived;
  (* reverse direction unaffected *)
  check_int "other direction intact" 1 (Bg_hw.Torus.hops torus ~src:1 ~dst:0)

let test_torus_severed_ring_fails () =
  let machine = Machine.create ~dims:(4, 1, 1) () in
  let torus = machine.Machine.torus in
  (* sever both directions out of the region between 0 and 1 *)
  Bg_hw.Torus.set_link_broken torus ~rank:0 ~dir:0 true;
  Bg_hw.Torus.set_link_broken torus ~rank:0 ~dir:1 true;
  Alcotest.check_raises "unroutable" (Bg_hw.Fault.Unavailable "torus ring severed")
    (fun () -> Bg_hw.Torus.transfer torus ~src:0 ~dst:1 ~bytes:8 ());
  Alcotest.(check (list (pair int int))) "bookkeeping" [ (0, 0); (0, 1) ]
    (Bg_hw.Torus.broken_links torus);
  (* repair and verify *)
  Bg_hw.Torus.set_link_broken torus ~rank:0 ~dir:0 false;
  Bg_hw.Torus.set_link_broken torus ~rank:0 ~dir:1 false;
  check_int "healthy again" 1 (Bg_hw.Torus.hops torus ~src:0 ~dst:1)

(* ------------------------------------------------------------------ *)
(* Debugger facade *)

let test_debugger_reads_and_chases () =
  let cluster = Cnk.Cluster.create ~dims:(1, 1, 1) () in
  Cnk.Cluster.boot_all cluster;
  let head_addr = ref 0 in
  let image =
    Image.executable ~name:"dbg" (fun () ->
        (* build a 3-node list in the heap: [value; next] cells *)
        let cell v next =
          let a = Bg_rt.Malloc.malloc 16 in
          Bg_rt.Libc.poke a v;
          Bg_rt.Libc.poke (a + 8) next;
          a
        in
        let c3 = cell 30 0 in
        let c2 = cell 20 c3 in
        let c1 = cell 10 c2 in
        head_addr := c1;
        (* keep the process alive long enough is unnecessary: memory stays
           inspectable after exit (the job's map is retained) *)
        Coro.consume 1_000)
  in
  Cnk.Cluster.run_job cluster (Job.create ~name:"dbg" image);
  let dbg = Ctl.Debugger.attach cluster ~rank:0 in
  let nodes = Ctl.Debugger.chase dbg ~pid:1 ~head:!head_addr ~next_offset:8 ~max:10 in
  check_int "three nodes" 3 (List.length nodes);
  Alcotest.(check (list int)) "values along the chain" [ 10; 20; 30 ]
    (List.map (fun a -> Ctl.Debugger.read_word dbg ~pid:1 ~addr:a) nodes);
  let snap = Ctl.Debugger.inspect dbg ~pid:1 in
  check_bool "map visible" true (List.length snap.Ctl.Debugger.regions > 3);
  check_bool "counters visible" true (snap.Ctl.Debugger.syscalls > 0)

(* ------------------------------------------------------------------ *)
(* VCD export *)

let vcd_run ?(seed = 1L) () =
  let cluster = Cnk.Cluster.create ~dims:(2, 1, 1) ~seed () in
  Cnk.Cluster.boot_all cluster;
  let image =
    Image.executable ~name:"t" (fun () ->
        for _ = 1 to 40 do
          Coro.consume 4_000;
          ignore (Bg_rt.Libc.gettid ())
        done)
  in
  Cnk.Cluster.launch_all cluster ~ranks:[ 0 ] (Job.create ~name:"t" image);
  cluster

let test_vcd_export () =
  let wf =
    Bg_bringup.Waveform.assemble ~run:(vcd_run ~seed:1L) ~rank:0 ~from_cycle:100_000
      ~cycles:4 ~stride:20_000 ()
  in
  let vcd = Bg_bringup.Vcd.to_string wf in
  check_bool "has definitions" true
    (String.length vcd > 200
    &&
    let has needle =
      let n = String.length vcd and m = String.length needle in
      let rec go i = i + m <= n && (String.sub vcd i m = needle || go (i + 1)) in
      go 0
    in
    has "$enddefinitions" && has "chip_state" && has "#100000" && has "b");
  (* a diff of identical runs never raises the diverged wire *)
  let wf2 =
    Bg_bringup.Waveform.assemble ~run:(vcd_run ~seed:1L) ~rank:0 ~from_cycle:100_000
      ~cycles:4 ~stride:20_000 ()
  in
  let diff = Bg_bringup.Vcd.diff_to_string ~golden:wf ~suspect:wf2 in
  let count_lines pred =
    String.split_on_char '\n' diff |> List.filter pred |> List.length
  in
  check_int "diverged never set" 0 (count_lines (fun l -> l = "1d"));
  check_int "diverged cleared at every sample" 4 (count_lines (fun l -> l = "0d"))

let suite =
  [
    Alcotest.test_case "debugger: read + chase" `Quick test_debugger_reads_and_chases;
    Alcotest.test_case "vcd: export + diff" `Quick test_vcd_export;
    Alcotest.test_case "ras: kernel events collected" `Quick test_ras_collects_kernel_events;
    Alcotest.test_case "ras: parity warns" `Quick test_ras_l1_parity_warns;
    Alcotest.test_case "ras: log is bounded" `Quick test_ras_log_is_bounded;
    Alcotest.test_case "torus: reroute around broken link" `Quick
      test_torus_reroutes_around_broken_link;
    Alcotest.test_case "torus: severed ring" `Quick test_torus_severed_ring_fails;
    Alcotest.test_case "partition: basic" `Quick test_partition_basic;
    Alcotest.test_case "partition: disjoint" `Quick test_partition_disjoint;
    Alcotest.test_case "partition: exhaustion/reuse" `Quick test_partition_exhaustion_and_reuse;
    Alcotest.test_case "partition: oversize" `Quick test_partition_shape_too_big;
    Alcotest.test_case "scheduler: space shares" `Quick test_scheduler_space_shares;
    Alcotest.test_case "scheduler: fifo" `Quick test_scheduler_fifo_waits;
    Alcotest.test_case "scheduler: backfill" `Quick test_scheduler_backfill_overtakes;
    Alcotest.test_case "scheduler: impossible job" `Quick test_scheduler_rejects_impossible;
    Alcotest.test_case "scheduler: survives faults" `Quick test_scheduler_survives_faulting_job;
    Alcotest.test_case "scheduler: walltime kill" `Quick test_scheduler_walltime_kills_runaway;
    Alcotest.test_case "scheduler: deterministic" `Quick test_scheduler_deterministic;
  ]
  @ List.map QCheck_alcotest.to_alcotest [ prop_partition_never_double_books ]
