(* Tests for the machine health service: windowed time-series rollups,
   the queryable RAS database, alert rules, and the flight recorder —
   plus the invariant everything hangs on: attaching the service must
   not perturb the simulated machine (paper §VI: RAS without jitter). *)

open Bg_engine
open Bg_kabi
module Obs = Bg_obs.Obs
module Ts = Bg_obs.Timeseries
module Rasdb = Bg_obs.Rasdb
module Health = Bg_obs.Health
module Export = Bg_obs.Export
module Res = Bg_resilience

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let check_str = Alcotest.(check string)
let check_float = Alcotest.(check (float 1e-9))

(* ------------------------------------------------------------------ *)
(* Time-series rollups *)

let test_rollup_kinds () =
  let o = Obs.create ~enabled:true () in
  let ts = Ts.create ~window:100 o in
  (* window 0: one counter bump, a gauge, one timer sample *)
  Obs.incr o ~subsystem:"s" ~name:"c" ~by:3 ();
  Obs.set_gauge o ~subsystem:"s" ~name:"g" 11;
  Obs.observe_cycles o ~subsystem:"s" ~name:"t" ~hi:64.0 ~bins:64 42;
  Ts.sample ts ~now:100;
  (* window 1: counter +5, gauge moves, no timer samples *)
  Obs.incr o ~subsystem:"s" ~name:"c" ~by:5 ();
  Obs.set_gauge o ~subsystem:"s" ~name:"g" 7;
  Ts.sample ts ~now:200;
  let point key kind =
    match Ts.points ts { Ts.key; kind } with
    | ps -> ps
  in
  let k name = { Obs.subsystem = "s"; name; rank = Obs.node_scope; core = Obs.node_scope } in
  (match point (k "c") Ts.Delta with
  | [ p0; p1 ] ->
    check_float "window 0 delta" 3.0 p0.Ts.v;
    check_float "window 1 delta" 5.0 p1.Ts.v;
    check_int "window index advances" 1 p1.Ts.window;
    check_int "cycle stamp is the window edge" 200 p1.Ts.at
  | ps -> Alcotest.fail (Printf.sprintf "expected 2 delta points, got %d" (List.length ps)));
  (match point (k "g") Ts.Level with
  | [ p0; p1 ] ->
    check_float "window 0 level" 11.0 p0.Ts.v;
    check_float "window 1 level" 7.0 p1.Ts.v
  | ps -> Alcotest.fail (Printf.sprintf "expected 2 level points, got %d" (List.length ps)));
  (* p50/p99 over only the window's samples: the single 42-cycle sample
     lands in bin [42, 43) of the 1-cycle-wide histogram *)
  (match point (k "t") Ts.P50 with
  | [ p0; p1 ] ->
    check_bool "windowed p50 in the answering bin" true (p0.Ts.v >= 42.0 && p0.Ts.v <= 43.0);
    check_float "empty window rolls up to 0" 0.0 p1.Ts.v
  | ps -> Alcotest.fail (Printf.sprintf "expected 2 p50 points, got %d" (List.length ps)));
  (match point (k "t") Ts.P99 with
  | p0 :: _ -> check_bool "windowed p99 too" true (p0.Ts.v >= 42.0 && p0.Ts.v <= 43.0)
  | [] -> Alcotest.fail "no p99 points");
  check_int "two windows sampled" 2 (Ts.windows_sampled ts)

let test_ring_bound_and_drops () =
  let o = Obs.create ~enabled:true () in
  let ts = Ts.create ~window:10 ~capacity:4 o in
  for w = 1 to 10 do
    Obs.incr o ~subsystem:"s" ~name:"c" ();
    Ts.sample ts ~now:(w * 10)
  done;
  let id = { Ts.key = { Obs.subsystem = "s"; name = "c"; rank = Obs.node_scope; core = Obs.node_scope };
             kind = Ts.Delta } in
  let ps = Ts.points ts id in
  check_int "ring bounded" 4 (List.length ps);
  check_int "overwrites counted" 6 (Ts.dropped_points ts);
  (match ps with
  | first :: _ -> check_int "oldest survivor is window 6" 6 first.Ts.window
  | [] -> Alcotest.fail "no points");
  check_float "sum_last over the ring" 4.0 (Ts.sum_last ts id 4);
  (match Ts.latest ts id with
  | Some p -> check_int "latest is window 9" 9 p.Ts.window
  | None -> Alcotest.fail "no latest point")

let test_max_series_bound () =
  let o = Obs.create ~enabled:true () in
  let ts = Ts.create ~window:10 ~max_series:3 o in
  for i = 0 to 9 do
    Obs.incr o ~subsystem:"s" ~name:(Printf.sprintf "c%d" i) ()
  done;
  Ts.sample ts ~now:10;
  check_int "series capped" 3 (List.length (Ts.ids ts));
  check_int "excess series counted" 7 (Ts.dropped_series ts)

let test_timeseries_digest_deterministic () =
  let run bump =
    let o = Obs.create ~enabled:true () in
    let ts = Ts.create ~window:10 o in
    for w = 1 to 5 do
      Obs.incr o ~subsystem:"s" ~name:"c" ~by:bump ();
      Ts.sample ts ~now:(w * 10)
    done;
    Ts.digest ts
  in
  check_bool "same inputs, same digest" true (Fnv.equal (run 2) (run 2));
  check_bool "different values, different digest" false (Fnv.equal (run 2) (run 3))

(* ------------------------------------------------------------------ *)
(* The RAS database *)

let test_rasdb_queries () =
  let db = Rasdb.create ~capacity:4 () in
  let add cycle rank severity message =
    ignore (Rasdb.add db ~cycle ~rank ~severity ~message ())
  in
  add 10 0 Rasdb.Info "boot ok";
  add 20 1 Rasdb.Warn "FAULT parity rank=1 core=0";
  add 30 1 Rasdb.Error "FAULT ciod_crash io=0 fatal=1";
  add 40 2 Rasdb.Info "boot ok";
  add 50 2 Rasdb.Error "tid 3 crashed: oops";
  add 60 0 Rasdb.Info "boot ok";
  check_int "count keeps evicted records" 6 (Rasdb.count db);
  check_int "ring retains capacity" 4 (Rasdb.retained db);
  check_int "evictions counted" 2 (Rasdb.dropped db);
  check_int "severity counts survive eviction" 3 (Rasdb.severity_count db Rasdb.Info);
  check_int "warn count" 1 (Rasdb.severity_count db Rasdb.Warn);
  check_int "error count" 2 (Rasdb.severity_count db Rasdb.Error);
  check_int "component index: parity" 1 (Rasdb.component_count db "parity");
  check_int "component index: ciod_crash" 1 (Rasdb.component_count db "ciod_crash");
  check_int "component index: kernel" 4 (Rasdb.component_count db "kernel");
  check_int "rank index survives eviction" 2 (Rasdb.rank_count db 0);
  Alcotest.(check (list string)) "components sorted" [ "ciod_crash"; "kernel"; "parity" ]
    (Rasdb.components db);
  (* filters compose, over retained records only, oldest first *)
  (match Rasdb.records db ~severity:Rasdb.Error ~rank:2 () with
  | [ r ] -> check_int "filtered record" 50 r.Rasdb.cycle
  | l -> Alcotest.fail (Printf.sprintf "expected 1 record, got %d" (List.length l)));
  check_int "since filter" 2 (List.length (Rasdb.records db ~since:50 ()));
  (match Rasdb.tail db 2 with
  | [ a; b ] ->
    check_int "tail oldest first" 50 a.Rasdb.cycle;
    check_int "tail newest last" 60 b.Rasdb.cycle
  | l -> Alcotest.fail (Printf.sprintf "expected tail of 2, got %d" (List.length l)));
  (* rate window is (now - window, now]: cycle 30 is out at now=60, w=30 *)
  check_int "rate half-open window" 3 (Rasdb.rate db ~window:30 ~now:60 ());
  check_int "rate severity filter" 1
    (Rasdb.rate db ~severity:Rasdb.Error ~window:30 ~now:60 ())

let test_component_classifier () =
  check_str "fault word" "parity" (Rasdb.component_of_message "FAULT parity rank=1 core=0");
  check_str "health prefix" "health"
    (Rasdb.component_of_message "HEALTH alert rule=r series=s rank=0 core=-1 window=1 value=1 threshold=1");
  check_str "free-form is kernel" "kernel" (Rasdb.component_of_message "tid 3 crashed: oops")

let test_rasdb_gauges () =
  let o = Obs.create ~enabled:true () in
  let db = Rasdb.create () in
  ignore (Rasdb.add db ~cycle:1 ~rank:0 ~severity:Rasdb.Error ~message:"x" ());
  ignore (Rasdb.add db ~cycle:2 ~rank:0 ~severity:Rasdb.Info ~message:"y" ());
  Rasdb.publish_gauges db o;
  let g name = Obs.gauge_value o ~subsystem:"ras" ~name () in
  check_bool "ras.error gauge" true (g "error" = Some 1);
  check_bool "ras.info gauge" true (g "info" = Some 1);
  check_bool "ras.total gauge" true (g "total" = Some 2);
  check_bool "ras.dropped gauge" true (g "dropped" = Some 0)

(* ------------------------------------------------------------------ *)
(* Rule grammar and the typed HEALTH wire format *)

let test_rule_parse_roundtrip () =
  let cases =
    [
      "retransmit_storm: cio.retransmits delta >= 8 for 2 error";
      "queue: scheduler.queue_wait_cycles p99 > 500000";
      "stall_rate: dma.inject_stalls rate <= 0.5 info";
      "links: torus.links_down value > 0 for 3 warn";
    ]
  in
  List.iter
    (fun s ->
      match Health.parse_rule s with
      | Error e -> Alcotest.fail (s ^ " rejected: " ^ e)
      | Ok r -> (
        match Health.parse_rule (Health.rule_to_string r) with
        | Ok r' -> check_bool ("roundtrip: " ^ s) true (r = r')
        | Error e -> Alcotest.fail ("printed form rejected: " ^ e)))
    cases;
  let rejected s =
    match Health.parse_rule s with
    | Error _ -> ()
    | Ok _ -> Alcotest.fail ("accepted bad rule: " ^ s)
  in
  rejected "no_colon cio.retransmits delta > 1";
  rejected "r: nodot delta > 1";
  rejected "r: a.b bogus > 1";
  rejected "r: a.b delta >> 1";
  rejected "r: a.b delta > not_a_number";
  rejected "r: a.b delta > 1 for 0";
  rejected "r: a.b delta > 1 fatal";
  rejected ""

let test_event_roundtrip () =
  let e =
    Health.Event.Alert
      { rule = "retransmit_storm"; series = "cio.retransmits:rate"; rank = 3;
        core = -1; window = 21; value = 12.5; threshold = 10.0 }
  in
  (match Health.Event.of_message (Health.Event.to_message e) with
  | Some got -> check_bool "roundtrip" true (got = e)
  | None -> Alcotest.fail "HEALTH message failed to parse back");
  check_bool "fault messages are not health events" true
    (Health.Event.of_message "FAULT parity rank=1 core=0" = None);
  check_bool "garbage is not a health event" true
    (Health.Event.of_message "HEALTH alert rule=" = None);
  check_bool "free text is not a health event" true
    (Health.Event.of_message "all quiet" = None);
  (* and Fault_event ignores the HEALTH namespace (shared RAS channel) *)
  check_bool "fault parser skips health" true
    (Res.Fault_event.of_message (Health.Event.to_message e) = None)

(* ------------------------------------------------------------------ *)
(* Alert evaluation: edge-trigger, streaks, re-arm *)

let test_alert_edge_trigger () =
  let o = Obs.create ~enabled:true () in
  let ts = Ts.create ~window:100 o in
  let db = Rasdb.create () in
  let rule =
    match Health.parse_rule "hot: s.c delta >= 3 for 2 warn" with
    | Ok r -> r
    | Error e -> failwith e
  in
  let svc = Health.create ~ts ~db ~rules:[ rule ] () in
  let emitted = ref [] in
  Health.set_emit svc (fun a -> emitted := a :: !emitted);
  let hot w =
    Obs.incr o ~subsystem:"s" ~name:"c" ~by:3 ();
    Ts.sample ts ~now:(w * 100)
  in
  let cold w = Ts.sample ts ~now:(w * 100) in
  hot 1;
  check_int "streak of 1 does not fire" 0 (Health.alert_count svc);
  hot 2;
  check_int "second consecutive window fires" 1 (Health.alert_count svc);
  hot 3;
  check_int "still firing, no re-fire" 1 (Health.alert_count svc);
  check_int "one alert in firing state" 1 (List.length (Health.firing svc));
  cold 4;
  check_int "predicate cleared" 0 (List.length (Health.firing svc));
  hot 5;
  hot 6;
  check_int "re-arms after clearing" 2 (Health.alert_count svc);
  (match List.rev !emitted with
  | (a : Health.alert) :: _ ->
    check_str "rule name" "hot" a.Health.rule;
    check_str "series label" "s.c:delta" a.Health.series;
    check_int "fired on window 1" 1 a.Health.window;
    check_float "observed value" 3.0 a.Health.value;
    check_float "threshold" 3.0 a.Health.threshold
  | [] -> Alcotest.fail "emit hook never called");
  (* each firing alert captured a postmortem bundle, all valid JSON *)
  check_int "one bundle per firing" 2 (List.length (Health.reports svc));
  List.iter
    (fun (label, json) ->
      check_str "alert bundle label" "alert:hot" label;
      match Export.validate_json json with
      | Ok () -> ()
      | Error e -> Alcotest.fail ("bundle is not valid JSON: " ^ e))
    (Health.reports svc)

let test_recorder_fault_trigger_and_bound () =
  let o = Obs.create ~enabled:true () in
  let ts = Ts.create ~window:100 o in
  let db = Rasdb.create () in
  let recorder = { Health.default_recorder with Health.max_reports = 2 } in
  let svc = Health.create ~recorder ~ts ~db ~rules:[] () in
  Health.set_snap_provider svc (fun () -> "replay:seed=1,events=0,clock=0");
  (* Error-severity inserts trigger capture; Info/Warn do not *)
  ignore (Rasdb.add db ~cycle:10 ~rank:0 ~severity:Rasdb.Info ~message:"boot ok" ());
  check_int "info does not capture" 0 (List.length (Health.reports svc));
  ignore
    (Rasdb.add db ~cycle:20 ~rank:1 ~severity:Rasdb.Error
       ~message:"FAULT ciod_crash io=0 fatal=1" ());
  ignore
    (Rasdb.add db ~cycle:30 ~rank:2 ~severity:Rasdb.Error ~message:"tid 1 crashed: x" ());
  ignore
    (Rasdb.add db ~cycle:40 ~rank:3 ~severity:Rasdb.Error ~message:"tid 2 crashed: y" ());
  check_int "bounded at max_reports" 2 (List.length (Health.reports svc));
  check_int "overflow counted" 1 (Health.captures_suppressed svc);
  (match Health.reports svc with
  | ("fault:ciod_crash", json) :: _ ->
    (match Export.validate_json json with
    | Ok () -> ()
    | Error e -> Alcotest.fail ("bundle is not valid JSON: " ^ e));
    let contains sub =
      let n = String.length sub and m = String.length json in
      let rec at i = i + n <= m && (String.sub json i n = sub || at (i + 1)) in
      at 0
    in
    check_bool "carries the snapshot reference" true
      (contains "replay:seed=1,events=0,clock=0");
    check_bool "carries the trigger message" true (contains "io=0")
  | l ->
    Alcotest.fail
      (Printf.sprintf "expected fault:ciod_crash first, got %s"
         (String.concat "," (List.map fst l))))

(* ------------------------------------------------------------------ *)
(* Whole-machine invariants *)

let io_workload () =
  let fd = Bg_rt.Libc.openf ~flags:Sysreq.o_create_trunc "/health-test.dat" in
  let block = Bytes.make 64 'h' in
  for i = 0 to 199 do
    ignore (Bg_rt.Libc.pwrite fd block ~offset:(i * 64))
  done;
  Bg_rt.Libc.close fd

let seeded_run ~health () =
  let cluster = Cnk.Cluster.create ~dims:(1, 1, 1) ~seed:7L () in
  let machine = Cnk.Cluster.machine cluster in
  Obs.set_enabled (Machine.obs machine) true;
  Bg_obs.Causal.set_enabled (Machine.causal machine) true;
  let svc = if health then Some (Machine.attach_health ~window:50_000 machine) else None in
  Cnk.Cluster.boot_all cluster;
  Cnk.Cluster.run_job cluster
    (Job.create ~name:"hio" (Image.executable ~name:"hio" io_workload));
  (cluster, machine, svc)

let test_health_on_digests_unperturbed () =
  (* The acceptance bar for the whole subsystem: attaching the health
     service must leave the architectural trace, the span stream and
     the causal graph byte-identical — sampling is pure observation. *)
  let digests (cluster, machine, _) =
    ( Fnv.to_hex (Trace.digest (Sim.trace (Cnk.Cluster.sim cluster))),
      Fnv.to_hex (Obs.digest (Machine.obs machine)),
      Fnv.to_hex (Bg_obs.Causal.digest (Machine.causal machine)) )
  in
  let t_off, s_off, c_off = digests (seeded_run ~health:false ()) in
  let t_on, s_on, c_on = digests (seeded_run ~health:true ()) in
  check_str "sim digest unperturbed" t_off t_on;
  check_str "span digest unperturbed" s_off s_on;
  check_str "causal digest unperturbed" c_off c_on

let test_same_seed_reports_byte_identical () =
  let run () =
    let cluster, machine, svc = seeded_run ~health:true () in
    let h = match svc with Some h -> h | None -> assert false in
    (* a seeded fault after the run: deterministic trigger for the
       flight recorder, identical across runs *)
    Machine.ras_emit machine ~rank:0 ~severity:Machine.Ras_error
      ~message:"tid 0 crashed: seeded";
    ignore cluster;
    (Health.reports h.Machine.h_svc, Fnv.to_hex (Health.digest h.Machine.h_svc))
  in
  let r1, d1 = run () in
  let r2, d2 = run () in
  check_str "health digest reproducible" d1 d2;
  check_int "same report count" (List.length r1) (List.length r2);
  List.iter2
    (fun (l1, j1) (l2, j2) ->
      check_str "same label" l1 l2;
      check_bool "byte-identical bundle" true (String.equal j1 j2))
    r1 r2;
  check_bool "at least the fault bundle captured" true (List.length r1 >= 1)

let test_recovery_consumes_alerts () =
  let cluster = Cnk.Cluster.create ~dims:(1, 1, 1) ~seed:3L () in
  let machine = Cnk.Cluster.machine cluster in
  Cnk.Cluster.boot_all cluster;
  let sched = Bg_control.Scheduler.create cluster in
  let recovery = Res.Recovery.attach sched in
  Machine.ras_emit machine ~rank:0 ~severity:Machine.Ras_warn
    ~message:
      (Health.Event.to_message
         (Health.Event.Alert
            { rule = "hot"; series = "s.c:delta"; rank = 0; core = -1;
              window = 1; value = 3.0; threshold = 3.0 }));
  check_int "recovery saw the typed alert" 1 (Res.Recovery.alerts_seen recovery);
  check_int "advisory: no jobs were killed" 0 (Res.Recovery.events_seen recovery)

let test_scheduler_turnaround_timer () =
  let cluster = Cnk.Cluster.create ~dims:(1, 1, 1) ~seed:5L () in
  let machine = Cnk.Cluster.machine cluster in
  Obs.set_enabled (Machine.obs machine) true;
  Cnk.Cluster.boot_all cluster;
  let sched = Bg_control.Scheduler.create cluster in
  ignore
    (Bg_control.Scheduler.submit sched ~shape:(1, 1, 1)
       (Job.create ~name:"t" (Image.executable ~name:"t" io_workload)));
  Bg_control.Scheduler.drain sched;
  match
    Obs.timer_stats (Machine.obs machine) ~subsystem:"scheduler"
      ~name:"turnaround_cycles" ()
  with
  | Some st -> check_bool "one completed job observed" true (Stats.Online.n st >= 1)
  | None -> Alcotest.fail "scheduler.turnaround_cycles timer missing"

let suite =
  [
    Alcotest.test_case "rollups: delta/level/windowed percentiles" `Quick test_rollup_kinds;
    Alcotest.test_case "rollups: ring bound + dropped points" `Quick test_ring_bound_and_drops;
    Alcotest.test_case "rollups: max_series bound" `Quick test_max_series_bound;
    Alcotest.test_case "rollups: digest deterministic" `Quick
      test_timeseries_digest_deterministic;
    Alcotest.test_case "rasdb: indexes, filters, rates" `Quick test_rasdb_queries;
    Alcotest.test_case "rasdb: component classifier" `Quick test_component_classifier;
    Alcotest.test_case "rasdb: severity gauges" `Quick test_rasdb_gauges;
    Alcotest.test_case "rules: parse + print roundtrip" `Quick test_rule_parse_roundtrip;
    Alcotest.test_case "HEALTH events: wire roundtrip" `Quick test_event_roundtrip;
    Alcotest.test_case "alerts: edge-trigger, streak, re-arm" `Quick test_alert_edge_trigger;
    Alcotest.test_case "recorder: fault trigger + bound" `Quick
      test_recorder_fault_trigger_and_bound;
    Alcotest.test_case "health on: digests unperturbed" `Quick
      test_health_on_digests_unperturbed;
    Alcotest.test_case "same seed: byte-identical postmortems" `Quick
      test_same_seed_reports_byte_identical;
    Alcotest.test_case "recovery consumes HEALTH alerts" `Quick test_recovery_consumes_alerts;
    Alcotest.test_case "scheduler: turnaround timer" `Quick test_scheduler_turnaround_timer;
  ]
