(* Tests for the workload library: DAXPY cost model, FWQ program, UMT and
   AMG proxies (computation correctness, not just timing), allreduce
   benchmark and LINPACK proxy plumbing, stencil neighbor finding. *)

open Bg_engine
open Bg_kabi
open Cnk
module Apps = Bg_apps

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let test_daxpy_quantum () =
  check_int "canonical quantum" 658_958 (Apps.Daxpy.cycles ~elements:256 ~reps:256);
  (* linear scaling *)
  let half = Apps.Daxpy.cycles ~elements:256 ~reps:128 in
  check_bool "half reps ~ half cycles" true (abs (half - 329_479) < 100)

let test_daxpy_memory_variant () =
  let cluster = Cluster.create ~dims:(1, 1, 1) () in
  Cluster.boot_all cluster;
  let image =
    Image.executable ~name:"daxpy" (fun () ->
        let base = Bg_rt.Malloc.malloc (2 * 8 * 256) in
        (* seed x with known values *)
        for i = 0 to 255 do
          Bg_rt.Libc.poke (base + (8 * i)) 0
        done;
        Apps.Daxpy.run_with_memory ~base ~elements:256 ~reps:4)
  in
  Cluster.run_job cluster (Job.create ~name:"daxpy" image);
  Alcotest.(check (list (pair int string))) "no faults" []
    (Node.faults (Cluster.node cluster 0))

let test_fwq_program_shape () =
  let cluster = Cluster.create ~dims:(1, 1, 1) () in
  Cluster.boot_all cluster;
  let entry, collect = Apps.Fwq.program ~samples:50 ~threads:4 () in
  Cluster.run_job cluster (Job.create ~name:"fwq" (Image.executable ~name:"fwq" entry));
  let r = collect () in
  check_int "four threads" 4 (List.length r.Apps.Fwq.thread_samples);
  List.iter
    (fun (_, samples) ->
      check_int "sample count" 50 (Array.length samples);
      Array.iter
        (fun s -> check_bool "at least the quantum" true (s >= Apps.Daxpy.quantum_cycles))
        samples)
    r.Apps.Fwq.thread_samples

let test_umt_proxy_end_to_end () =
  let cluster = Cluster.create ~dims:(1, 1, 1) () in
  Cluster.boot_all cluster;
  let lib_path = Apps.Umt_proxy.install (Cluster.fs cluster) in
  Alcotest.(check string) "library path" "/lib/umt_physics.so" lib_path;
  let entry, collect = Apps.Umt_proxy.program ~lib_path ~timesteps:3 ~threads:4 () in
  Cluster.run_job cluster (Job.create ~name:"umt" (Image.executable ~name:"umt" entry));
  let r = collect () in
  check_int "timesteps" 3 r.Apps.Umt_proxy.timesteps_run;
  (* per step: sum over angles 0..7 of ((a*7+1)*2) = 2*(7*28+8) = 408 *)
  check_int "checksum" (3 * 408) r.Apps.Umt_proxy.sweep_checksum;
  (* the results file landed on the I/O node *)
  let fs = Cluster.fs cluster in
  let inode = Result.get_ok (Bg_cio.Fs.resolve fs ~cwd:"/" "/umt_results.txt") in
  let contents = Result.get_ok (Bg_cio.Fs.read fs inode ~offset:0 ~len:100) in
  Alcotest.(check string) "file contents" "checksum=1224\n" (Bytes.to_string contents);
  Alcotest.(check (list (pair int string))) "no faults" []
    (Node.faults (Cluster.node cluster 0))

let test_amg_proxy_computes () =
  let run threads =
    let cluster = Cluster.create ~dims:(1, 1, 1) () in
    Cluster.boot_all cluster;
    let entry, collect = Apps.Amg_proxy.program ~grid:16 ~sweeps:3 ~threads () in
    Cluster.run_job cluster (Job.create ~name:"amg" (Image.executable ~name:"amg" entry));
    Alcotest.(check (list (pair int string))) "no faults" []
      (Node.faults (Cluster.node cluster 0));
    (collect ()).Apps.Amg_proxy.residual
  in
  let serial = run 1 in
  let threaded = run 4 in
  Alcotest.(check (float 1e-9)) "threading preserves the computation" serial threaded;
  check_bool "nonzero residual" true (serial > 0.0)

let test_allreduce_bench_zero_stddev_on_cnk () =
  let cluster = Cluster.create ~dims:(4, 1, 1) () in
  Cluster.boot_all cluster;
  let fabric = Bg_msg.Dcmf.make_fabric (Cluster.machine cluster) in
  for r = 0 to 3 do
    ignore (Bg_msg.Dcmf.attach fabric ~rank:r)
  done;
  let coll = Bg_msg.Mpi.Coll.create fabric ~participants:4 in
  let entry, collect = Apps.Allreduce_bench.program ~fabric ~coll ~iterations:200 () in
  Cluster.run_job cluster (Job.create ~name:"ar" (Image.executable ~name:"ar" entry));
  let stats = collect () in
  check_int "iterations recorded" 200 (Stats.Online.n stats);
  (* CNK: at most the DRAM-refresh quantization; "effectively zero" *)
  check_bool "stddev effectively 0" true (Stats.Online.stddev stats < 0.05)

let test_linpack_program_runs () =
  let cluster = Cluster.create ~dims:(2, 1, 1) () in
  Cluster.boot_all cluster;
  let fabric = Bg_msg.Dcmf.make_fabric (Cluster.machine cluster) in
  for r = 0 to 1 do
    ignore (Bg_msg.Dcmf.attach fabric ~rank:r)
  done;
  let coll = Bg_msg.Mpi.Coll.create fabric ~participants:2 in
  let entry, collect =
    Apps.Linpack.program ~fabric ~coll ~panels:20 ~panel_cycles:10_000 ()
  in
  Cluster.run_job cluster (Job.create ~name:"hpl" (Image.executable ~name:"hpl" entry));
  let total = collect () in
  check_bool "took at least compute time" true (total >= 20 * 10_000)

let test_stencil_neighbors () =
  let machine = Machine.create ~dims:(4, 4, 4) () in
  let n = Apps.Stencil.neighbors_of machine ~rank:0 in
  check_int "six distinct neighbors" 6 (List.length n);
  Alcotest.(check (list int)) "expected ranks" [ 1; 3; 4; 12; 16; 48 ] n;
  (* degenerate machine: fewer distinct neighbors *)
  let small = Machine.create ~dims:(2, 1, 1) () in
  let n2 = Apps.Stencil.neighbors_of small ~rank:0 in
  Alcotest.(check (list int)) "collapsed" [ 1 ] n2

let test_checkpoint_roundtrip () =
  let ok = ref false and missing = ref true in
  let cluster = Cluster.create ~dims:(1, 1, 1) () in
  Cluster.boot_all cluster;
  let image =
    Image.executable ~name:"ckpt" (fun () ->
        let state = Bg_rt.Malloc.malloc 100_000 in
        missing :=
          Apps.Checkpoint.restore ~name:"none" ~regions:[ (state, 8) ]
          = Error Apps.Checkpoint.No_checkpoint;
        (* recognizable pattern *)
        for i = 0 to 99 do
          Bg_rt.Libc.poke (state + (i * 1000)) (i * i)
        done;
        let written = Apps.Checkpoint.save ~name:"st" ~regions:[ (state, 100_000) ] in
        assert (written >= 100_000) (* data + self-describing header *);
        (* corrupt everything *)
        for i = 0 to 99 do
          Bg_rt.Libc.poke (state + (i * 1000)) (-1)
        done;
        assert (Apps.Checkpoint.exists ~name:"st");
        assert (Apps.Checkpoint.restore ~name:"st" ~regions:[ (state, 100_000) ] = Ok ());
        let all_back = ref true in
        for i = 0 to 99 do
          if Bg_rt.Libc.peek (state + (i * 1000)) <> i * i then all_back := false
        done;
        Apps.Checkpoint.remove ~name:"st";
        ok := !all_back && not (Apps.Checkpoint.exists ~name:"st"))
  in
  Cluster.run_job cluster (Job.create ~name:"ckpt" image);
  check_bool "restore of a missing checkpoint reports false" true !missing;
  check_bool "state survives the corrupt/restore cycle" true !ok;
  Alcotest.(check (list (pair int string))) "no faults" []
    (Node.faults (Cluster.node cluster 0))

let test_checkpoint_costs_shipped_io () =
  (* every checkpoint byte crosses the collective network: the CIOD must
     have served the write traffic *)
  let cluster = Cluster.create ~dims:(1, 1, 1) () in
  Cluster.boot_all cluster;
  let image =
    Image.executable ~name:"ck2" (fun () ->
        let state = Bg_rt.Malloc.malloc (256 * 1024) in
        ignore (Apps.Checkpoint.save ~name:"big" ~regions:[ (state, 256 * 1024) ]))
  in
  Cluster.run_job cluster (Job.create ~name:"ck2" image);
  let served = Bg_cio.Ciod.requests_served (Cluster.ciod_for cluster ~rank:0) in
  (* 256 KiB in 16 KiB chunks = 16 writes + open/close/mkdir *)
  check_bool "chunked writes shipped" true (served >= 18)

(* mini script interpreter *)

let run_script ?(libs = []) text =
  let cluster = Cluster.create ~dims:(1, 1, 1) () in
  Cluster.boot_all cluster;
  List.iter (fun lib -> ignore (Bg_rt.Ld_so.install_library (Cluster.fs cluster) lib)) libs;
  Apps.Pyscript.install_script (Cluster.fs cluster) ~path:"/job.py" text;
  let out = ref None and err = ref None in
  let image =
    Image.executable ~name:"pyrun" (fun () ->
        try out := Some (Apps.Pyscript.run ~path:"/job.py")
        with Apps.Pyscript.Script_error (line, msg) -> err := Some (line, msg))
  in
  Cluster.run_job cluster (Job.create ~name:"py" image);
  (cluster, !out, !err)

let physics_lib =
  Image.library ~name:"mini_physics"
    [
      { Image.symbol_name = "double"; fn = (fun x -> Coro.consume 1_000; x * 2) };
      { Image.symbol_name = "inc"; fn = (fun x -> x + 1) };
    ]

let test_pyscript_end_to_end () =
  let script =
    "# a UMT-style driver\n\
     load phys /lib/mini_physics.so\n\
     set x 3\n\
     loop 4\n\
     call phys double x -> x\n\
     call phys inc x -> x\n\
     end\n\
     add x 10\n\
     print x\n\
     write out.txt x\n"
  in
  let cluster, out, err = run_script ~libs:[ physics_lib ] script in
  (match err with Some (l, m) -> Alcotest.failf "script error line %d: %s" l m | None -> ());
  let r = Option.get out in
  (* ((((3*2+1)*2+1)*2+1)*2+1) + 10 = 73 *)
  Alcotest.(check (list (pair string int))) "final vars" [ ("x", 73) ]
    r.Apps.Pyscript.variables;
  Alcotest.(check string) "printed" "x=73\n" r.Apps.Pyscript.output;
  check_bool "statements counted" true (r.Apps.Pyscript.statements_executed > 10);
  let fs = Cluster.fs cluster in
  let inode = Result.get_ok (Bg_cio.Fs.resolve fs ~cwd:"/" "/out.txt") in
  Alcotest.(check string) "result file" "x=73\n"
    (Bytes.to_string (Result.get_ok (Bg_cio.Fs.read fs inode ~offset:0 ~len:100)))

let test_pyscript_nested_loops () =
  let script = "set n 0\nloop 3\nloop 4\nadd n 1\nend\nend\nprint n\n" in
  let _, out, err = run_script script in
  (match err with Some (l, m) -> Alcotest.failf "error %d: %s" l m | None -> ());
  Alcotest.(check (list (pair string int))) "3*4 adds" [ ("n", 12) ]
    (Option.get out).Apps.Pyscript.variables

let test_pyscript_errors () =
  (* unknown statement *)
  let _, _, err = run_script "frobnicate\n" in
  (match err with
  | Some (1, msg) -> check_bool "names the statement" true (String.length msg > 0)
  | _ -> Alcotest.fail "expected a line-1 parse error");
  (* undefined variable *)
  let _, _, err2 = run_script "print ghost\n" in
  check_bool "undefined var" true (err2 <> None);
  (* missing library *)
  let _, out3, err3 = run_script "load phys /lib/none.so\n" in
  check_bool "dlopen failure surfaces" true (out3 = None || err3 <> None)

let test_pyscript_unterminated_loop () =
  let _, out, err = run_script "loop 3\nadd x 1\n" in
  check_bool "unterminated loop rejected" true (out = None && err <> None)

(* conjugate gradient *)

let run_cg ~ranks ~iterations =
  let cluster = Cluster.create ~dims:(ranks, 1, 1) () in
  Cluster.boot_all cluster;
  let fabric = Bg_msg.Dcmf.make_fabric (Cluster.machine cluster) in
  for r = 0 to ranks - 1 do
    ignore (Bg_msg.Dcmf.attach fabric ~rank:r)
  done;
  let coll = Bg_msg.Mpi.Coll.create fabric ~participants:ranks in
  let entry, collect =
    Apps.Cg_solver.program ~fabric ~coll ~cells_per_rank:16 ~iterations ()
  in
  Cluster.run_job cluster (Job.create ~name:"cg" (Image.executable ~name:"cg" entry));
  Array.iter
    (fun node ->
      Alcotest.(check (list (pair int string))) "no faults" [] (Node.faults node))
    (Cluster.nodes cluster);
  collect ()

let test_cg_converges () =
  let r = run_cg ~ranks:4 ~iterations:25 in
  check_bool "residual dropped hard" true
    (r.Apps.Cg_solver.final_residual < 0.01 *. r.Apps.Cg_solver.initial_residual);
  let reference =
    Apps.Cg_solver.reference_final_residual ~ranks:4 ~cells_per_rank:16 ~iterations:25
  in
  let rel =
    Float.abs (r.Apps.Cg_solver.final_residual -. reference)
    /. Float.max reference 1e-300
  in
  check_bool "matches the dense reference" true (rel < 1e-6)

let test_cg_rank_invariant () =
  (* same global system split 2 vs 4 ways: same convergence *)
  let a = run_cg ~ranks:2 ~iterations:15 in
  let b =
    let cluster = Cluster.create ~dims:(4, 1, 1) () in
    Cluster.boot_all cluster;
    let fabric = Bg_msg.Dcmf.make_fabric (Cluster.machine cluster) in
    for r = 0 to 3 do
      ignore (Bg_msg.Dcmf.attach fabric ~rank:r)
    done;
    let coll = Bg_msg.Mpi.Coll.create fabric ~participants:4 in
    let entry, collect =
      Apps.Cg_solver.program ~fabric ~coll ~cells_per_rank:8 ~iterations:15 ()
    in
    Cluster.run_job cluster (Job.create ~name:"cg" (Image.executable ~name:"cg" entry));
    collect ()
  in
  let rel =
    Float.abs (a.Apps.Cg_solver.final_residual -. b.Apps.Cg_solver.final_residual)
    /. Float.max a.Apps.Cg_solver.final_residual 1e-300
  in
  check_bool "decomposition-invariant" true (rel < 1e-6)

let test_ior_writes_and_saturates () =
  let run ranks =
    let cluster = Cluster.create ~dims:(8, 1, 1) () in
    Cluster.boot_all cluster;
    let entry, collect =
      Apps.Ior_proxy.program ~bytes_per_rank:(256 * 1024) ~block_bytes:(32 * 1024) ()
    in
    Cluster.run_job cluster
      ~ranks:(List.init ranks Fun.id)
      (Job.create ~name:"ior" (Image.executable ~name:"ior" entry));
    let r = collect ~collect_from:(Cluster.machine cluster) () in
    (cluster, r)
  in
  let cluster, r1 = run 1 in
  check_int "one rank" 1 r1.Apps.Ior_proxy.ranks;
  (* the file really landed, full sized *)
  let fs = Cluster.fs cluster in
  let inode = Result.get_ok (Bg_cio.Fs.resolve fs ~cwd:"/" "/ior/rank-0.dat") in
  check_int "file size" (256 * 1024) (Bg_cio.Fs.size fs inode);
  let _, r8 = run 8 in
  check_bool "more ranks, more aggregate" true
    (r8.Apps.Ior_proxy.aggregate_mbps > r1.Apps.Ior_proxy.aggregate_mbps);
  (* but bounded by the shared uplink (~850 MB/s) *)
  check_bool "bounded by the tree uplink" true (r8.Apps.Ior_proxy.aggregate_mbps < 900.0)

let suite =
  [
    Alcotest.test_case "ior: writes + saturation" `Quick test_ior_writes_and_saturates;
    Alcotest.test_case "cg: converges to the reference" `Quick test_cg_converges;
    Alcotest.test_case "cg: rank invariant" `Quick test_cg_rank_invariant;
    Alcotest.test_case "pyscript: end to end" `Quick test_pyscript_end_to_end;
    Alcotest.test_case "pyscript: nested loops" `Quick test_pyscript_nested_loops;
    Alcotest.test_case "pyscript: errors" `Quick test_pyscript_errors;
    Alcotest.test_case "pyscript: unterminated loop" `Quick test_pyscript_unterminated_loop;
    Alcotest.test_case "checkpoint: roundtrip" `Quick test_checkpoint_roundtrip;
    Alcotest.test_case "checkpoint: shipped io" `Quick test_checkpoint_costs_shipped_io;
    Alcotest.test_case "daxpy: quantum" `Quick test_daxpy_quantum;
    Alcotest.test_case "daxpy: memory variant" `Quick test_daxpy_memory_variant;
    Alcotest.test_case "fwq: program shape" `Quick test_fwq_program_shape;
    Alcotest.test_case "umt: end to end" `Quick test_umt_proxy_end_to_end;
    Alcotest.test_case "amg: threading-invariant" `Quick test_amg_proxy_computes;
    Alcotest.test_case "allreduce bench: cnk stddev" `Quick
      test_allreduce_bench_zero_stddev_on_cnk;
    Alcotest.test_case "linpack: runs" `Quick test_linpack_program_runs;
    Alcotest.test_case "stencil: neighbors" `Quick test_stencil_neighbors;
  ]
