(* Tests for Bg_hw: memory, TLB, DAC, cache banks, DRAM self-refresh, chip
   reset, torus routing/timing, collective network, barrier network,
   clock stop. *)

open Bg_engine
open Bg_hw

let check_int = Alcotest.(check int)

(* ------------------------------------------------------------------ *)
(* Memory *)

let test_memory_rw_roundtrip () =
  let m = Memory.create ~size:(1 lsl 20) in
  let data = Bytes.of_string "hello, blue gene" in
  Memory.write m ~addr:12345 data;
  Alcotest.(check string) "roundtrip" "hello, blue gene"
    (Bytes.to_string (Memory.read m ~addr:12345 ~len:(Bytes.length data)))

let test_memory_cross_chunk () =
  let m = Memory.create ~size:(1 lsl 20) in
  (* Straddle the 64 KiB chunk boundary. *)
  let data = Bytes.make 1000 'x' in
  Memory.write m ~addr:((1 lsl 16) - 500) data;
  let back = Memory.read m ~addr:((1 lsl 16) - 500) ~len:1000 in
  Alcotest.(check bytes) "straddles chunks" data back

let test_memory_untouched_is_zero () =
  let m = Memory.create ~size:4096 in
  check_int "zero" 0 (Memory.read_byte m ~addr:100)

let test_memory_bounds () =
  let m = Memory.create ~size:4096 in
  Alcotest.check_raises "oob"
    (Invalid_argument "Memory: access [0x1000, +1) outside of 4096 bytes")
    (fun () -> ignore (Memory.read_byte m ~addr:4096))

let test_memory_int64 () =
  let m = Memory.create ~size:4096 in
  Memory.write_int64 m ~addr:8 0x1122334455667788L;
  Alcotest.(check int64) "int64 roundtrip" 0x1122334455667788L
    (Memory.read_int64 m ~addr:8)

let test_memory_copy () =
  let a = Memory.create ~size:4096 and b = Memory.create ~size:4096 in
  Memory.write a ~addr:0 (Bytes.of_string "dma-payload");
  Memory.copy ~src:a ~src_addr:0 ~dst:b ~dst_addr:100 ~len:11;
  Alcotest.(check string) "copied" "dma-payload"
    (Bytes.to_string (Memory.read b ~addr:100 ~len:11))

let test_memory_digest_tracks_writes () =
  let m = Memory.create ~size:4096 in
  let d0 = Memory.digest m in
  ignore (Memory.read m ~addr:0 ~len:100);
  Alcotest.(check bool) "reads don't change digest" true
    (Fnv.equal d0 (Memory.digest m));
  Memory.write_byte m ~addr:0 7;
  Alcotest.(check bool) "writes change digest" false
    (Fnv.equal d0 (Memory.digest m))

let prop_memory_roundtrip =
  QCheck.Test.make ~name:"memory write-then-read returns the data" ~count:100
    QCheck.(pair (int_bound 60_000) (string_of_size Gen.(1 -- 2000)))
    (fun (addr, s) ->
      let m = Memory.create ~size:(1 lsl 17) in
      Memory.write m ~addr (Bytes.of_string s);
      Bytes.to_string (Memory.read m ~addr ~len:(String.length s)) = s)

(* ------------------------------------------------------------------ *)
(* Tlb *)

let entry vaddr paddr size perm = { Tlb.vaddr; paddr; size; perm }

let test_tlb_hit_translation () =
  let tlb = Tlb.create ~capacity:4 in
  (match Tlb.install tlb (entry 0 (16 * 1024 * 1024) Page_size.P1m Tlb.perm_rwx) with
  | Ok () -> ()
  | Error e -> Alcotest.fail e);
  match Tlb.translate tlb Tlb.Load 4096 with
  | Tlb.Hit pa -> check_int "offset preserved" ((16 * 1024 * 1024) + 4096) pa
  | _ -> Alcotest.fail "expected hit"

let test_tlb_miss () =
  let tlb = Tlb.create ~capacity:4 in
  (match Tlb.translate tlb Tlb.Load 4096 with
  | Tlb.Miss -> ()
  | _ -> Alcotest.fail "expected miss");
  check_int "miss counted" 1 (Tlb.misses tlb)

let test_tlb_perm_fault () =
  let tlb = Tlb.create ~capacity:4 in
  (match Tlb.install tlb (entry 0 0 Page_size.P1m Tlb.perm_ro) with
  | Ok () -> ()
  | Error e -> Alcotest.fail e);
  match Tlb.translate tlb Tlb.Store 10 with
  | Tlb.Fault _ -> ()
  | _ -> Alcotest.fail "expected fault"

let test_tlb_alignment_rejected () =
  let tlb = Tlb.create ~capacity:4 in
  match Tlb.install tlb (entry 4096 0 Page_size.P1m Tlb.perm_rwx) with
  | Error _ -> ()
  | Ok () -> Alcotest.fail "misaligned entry accepted"

let test_tlb_overlap_rejected () =
  let tlb = Tlb.create ~capacity:4 in
  (match Tlb.install tlb (entry 0 0 Page_size.P16m Tlb.perm_rwx) with
  | Ok () -> ()
  | Error e -> Alcotest.fail e);
  match Tlb.install tlb (entry (1024 * 1024) (1 lsl 30) Page_size.P1m Tlb.perm_rwx) with
  | Error _ -> ()
  | Ok () -> Alcotest.fail "overlap accepted"

let test_tlb_fifo_eviction () =
  let tlb = Tlb.create ~capacity:2 in
  let mb = 1024 * 1024 in
  let ok = function Ok () -> () | Error e -> Alcotest.fail e in
  ok (Tlb.install tlb (entry 0 0 Page_size.P1m Tlb.perm_rwx));
  ok (Tlb.install tlb (entry mb mb Page_size.P1m Tlb.perm_rwx));
  ok (Tlb.install tlb (entry (2 * mb) (2 * mb) Page_size.P1m Tlb.perm_rwx));
  check_int "evictions" 1 (Tlb.evictions tlb);
  (* Oldest (vaddr 0) was evicted. *)
  (match Tlb.translate tlb Tlb.Load 0 with
  | Tlb.Miss -> ()
  | _ -> Alcotest.fail "expected miss after eviction");
  match Tlb.translate tlb Tlb.Load (2 * mb) with
  | Tlb.Hit _ -> ()
  | _ -> Alcotest.fail "newest must be present"

(* ------------------------------------------------------------------ *)
(* Dac *)

let test_dac_store_watch () =
  let d = Dac.create () in
  Dac.set d ~slot:1 (Some { Dac.lo = 0x1000; hi = 0x2000; on_store = true; on_load = false });
  Alcotest.(check (option int)) "hit" (Some 1) (Dac.check_store d ~addr:0x1800);
  Alcotest.(check (option int)) "miss below" None (Dac.check_store d ~addr:0xfff);
  Alcotest.(check (option int)) "miss at hi" None (Dac.check_store d ~addr:0x2000);
  Alcotest.(check (option int)) "loads not watched" None (Dac.check_load d ~addr:0x1800)

let test_dac_clear () =
  let d = Dac.create () in
  Dac.set d ~slot:0 (Some { Dac.lo = 0; hi = 10; on_store = true; on_load = true });
  Dac.set d ~slot:0 None;
  Alcotest.(check (option int)) "cleared" None (Dac.check_store d ~addr:5)

(* ------------------------------------------------------------------ *)
(* Cache *)

let test_cache_modulo_spreads_lines () =
  let c = Cache.create ~banks:8 Cache.Modulo_line in
  check_int "line 0" 0 (Cache.bank_of c 0);
  check_int "line 1" 1 (Cache.bank_of c 128);
  check_int "wraps" 0 (Cache.bank_of c (128 * 8))

let test_cache_fixed_conflicts () =
  let c = Cache.create ~banks:8 (Cache.Fixed 3) in
  for i = 0 to 99 do
    Cache.access c (i * 128)
  done;
  check_int "all on one bank" 100 (Cache.access_count c ~bank:3);
  Alcotest.(check (float 0.01)) "imbalance = banks" 8.0 (Cache.imbalance c)

let test_cache_xor_fold_balances_stride () =
  let c = Cache.create ~banks:8 Cache.Xor_fold in
  (* Pathological stride for the modulo mapping: every access hits the
     same modulo bank; xor-fold must spread it. *)
  for i = 0 to 799 do
    Cache.access c (i * 128 * 8)
  done;
  Alcotest.(check bool) "imbalance below 2x" true (Cache.imbalance c < 2.0)

(* ------------------------------------------------------------------ *)
(* Dram + Chip reset *)

let test_dram_self_refresh_preserves () =
  let d = Dram.create ~size:4096 in
  Memory.write (Dram.memory d) ~addr:0 (Bytes.of_string "persist");
  Dram.enter_self_refresh d;
  Dram.on_reset d;
  Alcotest.(check string) "survives" "persist"
    (Bytes.to_string (Memory.read (Dram.memory d) ~addr:0 ~len:7))

let test_dram_no_self_refresh_loses () =
  let d = Dram.create ~size:4096 in
  Memory.write (Dram.memory d) ~addr:0 (Bytes.of_string "gone");
  Dram.on_reset d;
  check_int "zeroed" 0 (Memory.read_byte (Dram.memory d) ~addr:0)

let test_chip_reset_clears_core_state () =
  let chip = Chip.create ~id:0 () in
  let core = Chip.core chip 0 in
  (match Tlb.install core.Chip.tlb (entry 0 0 Page_size.P1m Tlb.perm_rwx) with
  | Ok () -> ()
  | Error e -> Alcotest.fail e);
  Dac.set core.Chip.dac ~slot:0
    (Some { Dac.lo = 0; hi = 100; on_store = true; on_load = false });
  core.Chip.retired <- 42;
  Chip.reset chip;
  check_int "tlb flushed" 0 (Tlb.entry_count core.Chip.tlb);
  Alcotest.(check (option int)) "dac cleared" None (Dac.check_store core.Chip.dac ~addr:50);
  check_int "retired cleared" 0 core.Chip.retired;
  check_int "reset counted" 1 (Chip.reset_count chip)

let test_chip_unit_status () =
  let chip = Chip.create ~id:0 () in
  Chip.check_unit chip Chip.Torus_unit;
  Chip.set_unit_status chip Chip.Torus_unit (Fault.Broken "arbiter");
  Alcotest.check_raises "broken raises"
    (Fault.Unavailable "torus broken: arbiter") (fun () ->
      Chip.check_unit chip Chip.Torus_unit)

let test_chip_skew_deterministic () =
  let a = Chip.manufacturing_skew (Chip.create ~id:7 ()) in
  let b = Chip.manufacturing_skew (Chip.create ~id:7 ()) in
  let c = Chip.manufacturing_skew (Chip.create ~id:8 ()) in
  Alcotest.(check (float 0.0)) "same id same skew" a b;
  Alcotest.(check bool) "different id different skew" true (a <> c);
  Alcotest.(check bool) "in range" true (a >= 0.0 && a < 1.0)

(* ------------------------------------------------------------------ *)
(* Torus *)

let mk_torus ?(dims = (4, 4, 4)) sim = Torus.create sim ~dims ()

let test_torus_rank_coord_roundtrip () =
  let sim = Sim.create () in
  let t = mk_torus sim in
  for rank = 0 to Torus.node_count t - 1 do
    check_int "roundtrip" rank (Torus.rank_of_coord t (Torus.coord_of_rank t rank))
  done

let test_torus_hops_wraparound () =
  let sim = Sim.create () in
  let t = mk_torus sim in
  let r000 = Torus.rank_of_coord t (0, 0, 0) in
  let r300 = Torus.rank_of_coord t (3, 0, 0) in
  (* On a ring of 4, 0 -> 3 is one hop the short way. *)
  check_int "wraparound" 1 (Torus.hops t ~src:r000 ~dst:r300);
  let r222 = Torus.rank_of_coord t (2, 2, 2) in
  check_int "manhattan" 6 (Torus.hops t ~src:r000 ~dst:r222);
  check_int "self" 0 (Torus.hops t ~src:r000 ~dst:r000)

let test_torus_transfer_timing () =
  let sim = Sim.create () in
  let t = mk_torus sim in
  let p = Params.bgp in
  let arrived = ref (-1) in
  Torus.transfer t ~src:0 ~dst:1 ~bytes:1024
    ~on_arrival:(fun ~arrival_cycle -> arrived := arrival_cycle)
    ();
  ignore (Sim.run sim);
  let expected =
    p.Params.torus_inject_cycles + p.Params.torus_hop_cycles
    + int_of_float (Float.ceil (1024.0 /. p.Params.torus_link_bytes_per_cycle))
    + p.Params.torus_receive_cycles
  in
  check_int "1-hop timing" expected !arrived;
  check_int "estimate agrees" expected (Torus.estimate_cycles t ~src:0 ~dst:1 ~bytes:1024)

let test_torus_link_contention () =
  let sim = Sim.create () in
  let t = mk_torus sim in
  let arrivals = ref [] in
  (* Two back-to-back transfers over the same link must serialize. *)
  Torus.transfer t ~src:0 ~dst:1 ~bytes:100_000
    ~on_arrival:(fun ~arrival_cycle -> arrivals := arrival_cycle :: !arrivals)
    ();
  Torus.transfer t ~src:0 ~dst:1 ~bytes:100_000
    ~on_arrival:(fun ~arrival_cycle -> arrivals := arrival_cycle :: !arrivals)
    ();
  ignore (Sim.run sim);
  match List.sort compare !arrivals with
  | [ a1; a2 ] ->
    let ser = int_of_float (Float.ceil (100_000.0 /. Params.bgp.Params.torus_link_bytes_per_cycle)) in
    Alcotest.(check bool) "second waits for link" true (a2 - a1 >= ser)
  | _ -> Alcotest.fail "expected two arrivals"

let test_torus_disjoint_links_parallel () =
  let sim = Sim.create () in
  let t = mk_torus sim in
  let arrivals = ref [] in
  let record ~arrival_cycle = arrivals := arrival_cycle :: !arrivals in
  Torus.transfer t ~src:0 ~dst:1 ~bytes:100_000 ~on_arrival:record ();
  let src2 = Torus.rank_of_coord t (0, 1, 0) and dst2 = Torus.rank_of_coord t (0, 2, 0) in
  Torus.transfer t ~src:src2 ~dst:dst2 ~bytes:100_000 ~on_arrival:record ();
  ignore (Sim.run sim);
  match List.sort compare !arrivals with
  | [ a1; a2 ] -> check_int "same finish on disjoint links" a1 a2
  | _ -> Alcotest.fail "expected two arrivals"

let test_torus_injection_fifo_serializes () =
  let sim = Sim.create () in
  let t = mk_torus sim in
  let arrivals = ref [] in
  let record ~arrival_cycle = arrivals := arrival_cycle :: !arrivals in
  (* two DMA descriptors from rank 0 to DIFFERENT destinations: disjoint
     wire links, but one injection FIFO *)
  Torus.transfer t ~src:0 ~dst:1 ~bytes:64 ~on_arrival:record ();
  let dst2 = Torus.rank_of_coord t (0, 1, 0) in
  Torus.transfer t ~src:0 ~dst:dst2 ~bytes:64 ~on_arrival:record ();
  ignore (Sim.run sim);
  (match List.sort compare !arrivals with
  | [ a1; a2 ] ->
    Alcotest.(check bool) "second descriptor waits for the FIFO" true
      (a2 - a1 >= Params.bgp.Params.torus_inject_cycles)
  | _ -> Alcotest.fail "expected two arrivals");
  (* different sources inject in parallel *)
  let sim2 = Sim.create () in
  let t2 = mk_torus sim2 in
  let arrivals2 = ref [] in
  let record2 ~arrival_cycle = arrivals2 := arrival_cycle :: !arrivals2 in
  Torus.transfer t2 ~src:0 ~dst:1 ~bytes:64 ~on_arrival:record2 ();
  let src2 = Torus.rank_of_coord t2 (0, 2, 0) and dst3 = Torus.rank_of_coord t2 (0, 3, 0) in
  Torus.transfer t2 ~src:src2 ~dst:dst3 ~bytes:64 ~on_arrival:record2 ();
  ignore (Sim.run sim2);
  match List.sort compare !arrivals2 with
  | [ a1; a2 ] -> check_int "independent FIFOs" a1 a2
  | _ -> Alcotest.fail "expected two arrivals"

let test_torus_disabled_raises () =
  let sim = Sim.create () in
  let t = mk_torus sim in
  Torus.set_enabled t false;
  Alcotest.check_raises "raises" (Fault.Unavailable "torus") (fun () ->
      Torus.transfer t ~src:0 ~dst:1 ~bytes:8 ())

let prop_torus_hops_symmetric =
  QCheck.Test.make ~name:"torus hop count is symmetric" ~count:200
    QCheck.(pair (int_bound 63) (int_bound 63))
    (fun (a, b) ->
      let sim = Sim.create () in
      let t = mk_torus sim in
      Torus.hops t ~src:a ~dst:b = Torus.hops t ~src:b ~dst:a)

let prop_torus_hops_bounded =
  QCheck.Test.make ~name:"torus hops bounded by sum of half-dims" ~count:200
    QCheck.(pair (int_bound 63) (int_bound 63))
    (fun (a, b) ->
      let sim = Sim.create () in
      let t = mk_torus sim in
      Torus.hops t ~src:a ~dst:b <= 2 + 2 + 2)

(* ------------------------------------------------------------------ *)
(* Collective net *)

let test_collective_grouping () =
  let sim = Sim.create () in
  let c = Collective_net.create sim ~compute_nodes:64 ~nodes_per_io_node:16 () in
  check_int "io nodes" 4 (Collective_net.io_node_count c);
  check_int "cn 0" 0 (Collective_net.io_node_of c ~cn:0);
  check_int "cn 15" 0 (Collective_net.io_node_of c ~cn:15);
  check_int "cn 16" 1 (Collective_net.io_node_of c ~cn:16);
  check_int "cn 63" 3 (Collective_net.io_node_of c ~cn:63)

let test_collective_serializes_shared_uplink () =
  let sim = Sim.create () in
  let c = Collective_net.create sim ~compute_nodes:16 ~nodes_per_io_node:16 () in
  let arrivals = ref [] in
  let record ~payload:_ ~arrival_cycle = arrivals := arrival_cycle :: !arrivals in
  Collective_net.to_io_node c ~cn:0 ~payload:(Bytes.create 10_000) ~on_arrival:record;
  Collective_net.to_io_node c ~cn:1 ~payload:(Bytes.create 10_000) ~on_arrival:record;
  ignore (Sim.run sim);
  match List.sort compare !arrivals with
  | [ a1; a2 ] ->
    Alcotest.(check bool) "second queues" true (a2 - a1 >= 10_000 / 1)
  | _ -> Alcotest.fail "expected two arrivals"

let test_collective_disabled () =
  let sim = Sim.create () in
  let c = Collective_net.create sim ~compute_nodes:4 ~nodes_per_io_node:4 () in
  Collective_net.set_enabled c false;
  Alcotest.check_raises "raises" (Fault.Unavailable "collective") (fun () ->
      Collective_net.to_io_node c ~cn:0 ~payload:(Bytes.create 8)
        ~on_arrival:(fun ~payload:_ ~arrival_cycle:_ -> ()))

(* ------------------------------------------------------------------ *)
(* Barrier net *)

let test_barrier_releases_all_together () =
  let sim = Sim.create () in
  let b = Barrier_net.create sim ~participants:4 () in
  let releases = ref [] in
  let arrive_at rank when_ =
    ignore
      (Sim.schedule_at sim when_ (fun () ->
           Barrier_net.arrive b ~rank ~on_release:(fun ~release_cycle ->
               releases := (rank, release_cycle) :: !releases)))
  in
  arrive_at 0 10;
  arrive_at 1 500;
  arrive_at 2 20;
  arrive_at 3 999;
  ignore (Sim.run sim);
  check_int "all released" 4 (List.length !releases);
  let times = List.map snd !releases in
  let expected = 999 + Params.bgp.Params.barrier_round_cycles in
  List.iter (fun c -> check_int "release = last arrival + round" expected c) times;
  check_int "generation" 1 (Barrier_net.generation b)

let test_barrier_double_arrive_rejected () =
  let sim = Sim.create () in
  let b = Barrier_net.create sim ~participants:2 () in
  Barrier_net.arrive b ~rank:0 ~on_release:(fun ~release_cycle:_ -> ());
  Alcotest.check_raises "double arrive"
    (Invalid_argument "Barrier_net.arrive: rank already waiting") (fun () ->
      Barrier_net.arrive b ~rank:0 ~on_release:(fun ~release_cycle:_ -> ()))

let test_barrier_generations () =
  let sim = Sim.create () in
  let b = Barrier_net.create sim ~participants:2 () in
  let count = ref 0 in
  let rec loop rank remaining =
    if remaining > 0 then
      Barrier_net.arrive b ~rank ~on_release:(fun ~release_cycle:_ ->
          incr count;
          loop rank (remaining - 1))
  in
  loop 0 3;
  loop 1 3;
  ignore (Sim.run sim);
  check_int "three generations" 3 (Barrier_net.generation b);
  check_int "six releases" 6 !count

(* ------------------------------------------------------------------ *)
(* Clock stop *)

let test_clock_stop_halts () =
  let sim = Sim.create () in
  let chip = Chip.create ~id:3 () in
  let cs = Clock_stop.create sim ~chip in
  Clock_stop.arm cs ~at_cycle:100;
  ignore (Sim.schedule_at sim 200 (fun () -> Alcotest.fail "ran past stop"));
  match Sim.run sim with
  | Sim.Halted reason -> Alcotest.(check string) "reason" "clock-stop:3" reason
  | _ -> Alcotest.fail "expected halt"

let test_clock_stop_disarm () =
  let sim = Sim.create () in
  let chip = Chip.create ~id:0 () in
  let cs = Clock_stop.create sim ~chip in
  Clock_stop.arm cs ~at_cycle:100;
  Clock_stop.disarm cs;
  let ran = ref false in
  ignore (Sim.schedule_at sim 200 (fun () -> ran := true));
  (match Sim.run sim with
  | Sim.Completed -> ()
  | _ -> Alcotest.fail "expected completion");
  Alcotest.(check bool) "later event ran" true !ran

(* ------------------------------------------------------------------ *)

let qcheck =
  List.map QCheck_alcotest.to_alcotest
    [ prop_memory_roundtrip; prop_torus_hops_symmetric; prop_torus_hops_bounded ]

let suite =
  [
    Alcotest.test_case "memory: roundtrip" `Quick test_memory_rw_roundtrip;
    Alcotest.test_case "memory: cross chunk" `Quick test_memory_cross_chunk;
    Alcotest.test_case "memory: untouched zero" `Quick test_memory_untouched_is_zero;
    Alcotest.test_case "memory: bounds" `Quick test_memory_bounds;
    Alcotest.test_case "memory: int64" `Quick test_memory_int64;
    Alcotest.test_case "memory: copy" `Quick test_memory_copy;
    Alcotest.test_case "memory: digest tracks writes" `Quick test_memory_digest_tracks_writes;
    Alcotest.test_case "tlb: hit" `Quick test_tlb_hit_translation;
    Alcotest.test_case "tlb: miss" `Quick test_tlb_miss;
    Alcotest.test_case "tlb: perm fault" `Quick test_tlb_perm_fault;
    Alcotest.test_case "tlb: alignment" `Quick test_tlb_alignment_rejected;
    Alcotest.test_case "tlb: overlap" `Quick test_tlb_overlap_rejected;
    Alcotest.test_case "tlb: fifo eviction" `Quick test_tlb_fifo_eviction;
    Alcotest.test_case "dac: store watch" `Quick test_dac_store_watch;
    Alcotest.test_case "dac: clear" `Quick test_dac_clear;
    Alcotest.test_case "cache: modulo mapping" `Quick test_cache_modulo_spreads_lines;
    Alcotest.test_case "cache: fixed bank conflicts" `Quick test_cache_fixed_conflicts;
    Alcotest.test_case "cache: xor-fold balances" `Quick test_cache_xor_fold_balances_stride;
    Alcotest.test_case "dram: self-refresh preserves" `Quick test_dram_self_refresh_preserves;
    Alcotest.test_case "dram: reset without refresh loses" `Quick test_dram_no_self_refresh_loses;
    Alcotest.test_case "chip: reset clears cores" `Quick test_chip_reset_clears_core_state;
    Alcotest.test_case "chip: unit status" `Quick test_chip_unit_status;
    Alcotest.test_case "chip: skew deterministic" `Quick test_chip_skew_deterministic;
    Alcotest.test_case "torus: rank/coord roundtrip" `Quick test_torus_rank_coord_roundtrip;
    Alcotest.test_case "torus: wraparound + manhattan" `Quick test_torus_hops_wraparound;
    Alcotest.test_case "torus: transfer timing" `Quick test_torus_transfer_timing;
    Alcotest.test_case "torus: link contention" `Quick test_torus_link_contention;
    Alcotest.test_case "torus: disjoint links parallel" `Quick test_torus_disjoint_links_parallel;
    Alcotest.test_case "torus: injection fifo" `Quick test_torus_injection_fifo_serializes;
    Alcotest.test_case "torus: disabled raises" `Quick test_torus_disabled_raises;
    Alcotest.test_case "collective: grouping" `Quick test_collective_grouping;
    Alcotest.test_case "collective: shared uplink serializes" `Quick
      test_collective_serializes_shared_uplink;
    Alcotest.test_case "collective: disabled raises" `Quick test_collective_disabled;
    Alcotest.test_case "barrier: releases together" `Quick test_barrier_releases_all_together;
    Alcotest.test_case "barrier: double arrive" `Quick test_barrier_double_arrive_rejected;
    Alcotest.test_case "barrier: generations" `Quick test_barrier_generations;
    Alcotest.test_case "clock-stop: halts" `Quick test_clock_stop_halts;
    Alcotest.test_case "clock-stop: disarm" `Quick test_clock_stop_disarm;
  ]
  @ qcheck
