(* Tests for the self-healing control plane: the {!Bg_resilience.Policy}
   decision engine over the {!Bg_resilience.Recovery} actuator — retry
   with deterministic backoff, spare-node substitution, the CIOD
   restart/drain/rebuild ladder, graceful-degradation tiers — plus the
   replay-safety properties the closed loop depends on: idempotent death
   handling, torn-checkpoint immunity at the two-phase commit boundary,
   and fault-stream fuzzing (shuffled / duplicated / truncated). *)

open Bg_engine
open Bg_kabi
module Ctl = Bg_control
module Res = Bg_resilience
module Obs = Bg_obs.Obs

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let check_str = Alcotest.(check string)

let capture_hex sched =
  let b = Buffer.create 256 in
  Ctl.Scheduler.capture sched b;
  Fnv.to_hex (Fnv.add_bytes Fnv.empty (Buffer.to_bytes b))

let ckpt_spec ?(name = "heal") ?(steps = 30) ?(ckpt_every = 2)
    ?(state_bytes = 4096) ?(full_every = 1) () =
  {
    Res.Ckpt.name;
    steps;
    step_cycles = 20_000;
    state_bytes;
    ckpt_every;
    full_every;
    strategy = Res.Ckpt.Parity_inplace;
  }

let check_digest spec (o : Res.Ckpt.outcome) =
  check_bool "state digest matches the host mirror" true
    (Fnv.equal o.Res.Ckpt.state_digest
       (Res.Ckpt.expected_digest spec ~rank_index:o.Res.Ckpt.rank_index))

(* ------------------------------------------------------------------ *)
(* Satellite 1: duplicated / replayed death notices are no-ops *)

let test_node_failed_idempotent () =
  let cluster = Cnk.Cluster.create ~dims:(4, 1, 1) () in
  Cnk.Cluster.boot_all cluster;
  let sim = Cnk.Cluster.sim cluster in
  let fabric = Bg_msg.Dcmf.make_fabric (Cnk.Cluster.machine cluster) in
  let sched = Ctl.Scheduler.create cluster in
  let inj = Res.Injector.attach cluster in
  let recov = Res.Recovery.attach sched in
  let spec = ckpt_spec () in
  let factory, outcomes = Res.Ckpt.job_factory ~fabric spec in
  let jid = Ctl.Scheduler.submit_factory sched ~restart_limit:3 ~shape:(2, 1, 1) factory in
  let death () = Res.Injector.inject_now inj (Res.Fault_event.Node_death { rank = 0 }) in
  (* the same death notice lands twice in one burst, then is replayed
     later — after the job has been requeued onto different hardware;
     a non-idempotent path would gang-kill the relocated incarnation *)
  ignore
    (Sim.schedule_at sim 2_600_000 (fun () ->
         death ();
         death ()));
  ignore (Sim.schedule_at sim 3_600_000 death);
  Ctl.Scheduler.drain sched;
  check_int "one death handled, not three" 1 (Res.Recovery.deaths_handled recov);
  check_int "one restart" 1 (Ctl.Scheduler.restarts sched jid);
  (match Ctl.Scheduler.state sched jid with
  | Ctl.Scheduler.Completed _ -> ()
  | _ -> Alcotest.fail "job did not complete");
  Alcotest.(check (list int))
    "only rank 0 down" [ 0 ]
    (Ctl.Partition.down_nodes (Ctl.Scheduler.partition sched));
  let outcomes = outcomes () in
  check_int "both logical ranks finished" 2 (List.length outcomes);
  List.iter
    (fun (o : Res.Ckpt.outcome) ->
      check_bool "clear of the dead node" true (o.Res.Ckpt.machine_rank <> 0);
      check_digest spec o)
    outcomes

let test_mark_down_replay_safe () =
  let cluster = Cnk.Cluster.create ~dims:(4, 1, 1) () in
  Cnk.Cluster.boot_all cluster;
  let sched = Ctl.Scheduler.create cluster in
  let pristine = capture_hex sched in
  Ctl.Scheduler.mark_down sched ~rank:2;
  let once = capture_hex sched in
  Ctl.Scheduler.mark_down sched ~rank:2;
  check_str "second mark_down changes nothing" once (capture_hex sched);
  (* node_failed on an already-down rank: no job to kill, no state change *)
  Ctl.Scheduler.node_failed sched ~rank:2;
  check_str "replayed node_failed changes nothing" once (capture_hex sched);
  Ctl.Scheduler.mark_up sched ~rank:2;
  check_str "mark_up restores the pristine pool" pristine (capture_hex sched);
  Ctl.Scheduler.mark_up sched ~rank:2;
  check_str "mark_up of an up rank is a no-op" pristine (capture_hex sched)

(* ------------------------------------------------------------------ *)
(* Satellite 2: a kill landing anywhere across the checkpoint window —
   including between the data-write barrier and the commit marker —
   must leave no torn state behind.  Sweep kill cycles across the
   job's checkpointing phase; every incarnation must restore only a
   fully committed version and finish byte-identical to the mirror. *)

let test_commit_boundary_kill () =
  let spec =
    ckpt_spec ~name:"torn" ~steps:20 ~ckpt_every:2 ~state_bytes:16_384
      ~full_every:2 ()
  in
  let restored_any = ref false in
  List.iter
    (fun kill_cycle ->
      let cluster = Cnk.Cluster.create ~dims:(2, 1, 1) () in
      Cnk.Cluster.boot_all cluster;
      let sim = Cnk.Cluster.sim cluster in
      let fabric = Bg_msg.Dcmf.make_fabric (Cnk.Cluster.machine cluster) in
      let sched = Ctl.Scheduler.create cluster in
      let inj = Res.Injector.attach cluster in
      ignore (Res.Recovery.attach sched);
      let factory, outcomes = Res.Ckpt.job_factory ~fabric spec in
      let jid =
        Ctl.Scheduler.submit_factory sched ~restart_limit:4 ~shape:(1, 1, 1) factory
      in
      ignore
        (Sim.schedule_at sim kill_cycle (fun () ->
             Res.Injector.inject_now inj (Res.Fault_event.Node_death { rank = 0 })));
      Ctl.Scheduler.drain sched;
      (match Ctl.Scheduler.state sched jid with
      | Ctl.Scheduler.Completed _ -> ()
      | _ ->
        Alcotest.fail (Printf.sprintf "kill@%d: job did not complete" kill_cycle));
      match outcomes () with
      | [ o ] ->
        check_digest spec o;
        (* a restore can only land on a committed version: a multiple of
           ckpt_every steps, never a half-written one *)
        check_int
          (Printf.sprintf "kill@%d: restored step on a commit boundary" kill_cycle)
          0
          (o.Res.Ckpt.restored_step mod spec.Res.Ckpt.ckpt_every);
        if Ctl.Scheduler.restarts sched jid > 0 && o.Res.Ckpt.restored_step > 0 then
          restored_any := true
      | _ -> Alcotest.fail "outcome count")
    [
      2_150_000;
      2_200_000;
      2_250_000;
      2_300_000;
      2_350_000;
      2_400_000;
      2_450_000;
      2_500_000;
      2_550_000;
    ];
  check_bool "sweep exercised at least one mid-checkpoint restore" true !restored_any

(* ------------------------------------------------------------------ *)
(* Satellite 3: fuzz the actuator with shuffled / duplicated /
   truncated fault sequences.  Counters stay monotone, nothing
   escapes, and the final scheduler/allocator state is a function of
   the fault SET — not of arrival order or multiplicity. *)

type fop = Death of int | Fatal of int | Parity | Link

let fuzz_run ops =
  let cluster = Cnk.Cluster.create ~dims:(4, 2, 1) ~nodes_per_io_node:4 () in
  Cnk.Cluster.boot_all cluster;
  let sched = Ctl.Scheduler.create cluster in
  let recov = Res.Recovery.create sched in
  let prev = ref (0, 0, 0) in
  List.iter
    (fun op ->
      (try
         match op with
         | Death rank -> ignore (Res.Recovery.node_death recov ~rank)
         | Fatal io_node -> ignore (Res.Recovery.fatal_ciod recov ~io_node)
         | Parity -> Res.Recovery.note_parity recov
         | Link -> Res.Recovery.note_link recov
       with exn ->
         Alcotest.fail ("exception escaped the actuator: " ^ Printexc.to_string exn));
      let cur =
        ( Res.Recovery.deaths_handled recov,
          Res.Recovery.psets_lost recov,
          Res.Recovery.parity_seen recov + Res.Recovery.link_events_seen recov )
      in
      let a, b, c = !prev and a', b', c' = cur in
      check_bool "counters monotone" true (a' >= a && b' >= b && c' >= c);
      prev := cur)
    ops;
  let deaths, psets, _ = !prev in
  (capture_hex sched, deaths, psets)

let test_fuzz_fault_set () =
  let base =
    [ Death 1; Parity; Fatal 0; Link; Death 2; Death 5; Fatal 1; Death 1; Fatal 0 ]
  in
  let shuffled =
    [ Fatal 1; Death 5; Link; Death 1; Fatal 0; Death 2; Fatal 0; Parity; Death 1 ]
  in
  let duplicated = base @ base in
  let ref_digest, ref_deaths, ref_psets = fuzz_run base in
  List.iter
    (fun (label, ops) ->
      let digest, deaths, psets = fuzz_run ops in
      check_str (label ^ ": same final scheduler state") ref_digest digest;
      check_int (label ^ ": same deaths handled") ref_deaths deaths;
      check_int (label ^ ": same psets lost") ref_psets psets)
    [ ("reversed", List.rev base); ("shuffled", shuffled); ("duplicated", duplicated) ];
  (* a truncated stream is the fault set of its prefix *)
  let prefix = [ Death 1; Parity; Fatal 0; Link ] in
  let d1, _, _ = fuzz_run prefix in
  let d2, _, _ = fuzz_run (List.rev prefix) in
  check_str "truncated: state is a function of the prefix set" d1 d2

(* ------------------------------------------------------------------ *)
(* Policy engine: duplicated fault stream end to end, and same-seed
   timeline determinism *)

let policy_scenario ~seed ~dup () =
  let cluster = Cnk.Cluster.create ~dims:(4, 1, 1) ~seed () in
  Cnk.Cluster.boot_all cluster;
  let sim = Cnk.Cluster.sim cluster in
  let fabric = Bg_msg.Dcmf.make_fabric (Cnk.Cluster.machine cluster) in
  let sched = Ctl.Scheduler.create cluster in
  let inj = Res.Injector.attach cluster in
  let policy = Res.Policy.attach sched in
  let spec = ckpt_spec ~name:"dup" () in
  let factory, outcomes = Res.Ckpt.job_factory ~fabric spec in
  let jid = Ctl.Scheduler.submit_factory sched ~restart_limit:3 ~shape:(2, 1, 1) factory in
  let death () = Res.Injector.inject_now inj (Res.Fault_event.Node_death { rank = 0 }) in
  ignore
    (Sim.schedule_at sim 2_600_000 (fun () ->
         death ();
         if dup then death ()));
  if dup then ignore (Sim.schedule_at sim 3_600_000 death);
  Ctl.Scheduler.drain sched;
  (match Ctl.Scheduler.state sched jid with
  | Ctl.Scheduler.Completed _ -> ()
  | _ -> Alcotest.fail "job did not complete");
  let out_digest =
    List.fold_left
      (fun acc (o : Res.Ckpt.outcome) ->
        check_digest spec o;
        Fnv.add_int64 acc o.Res.Ckpt.state_digest)
      Fnv.empty (outcomes ())
  in
  ( Res.Recovery.deaths_handled (Res.Policy.recovery policy),
    Ctl.Scheduler.restarts sched jid,
    Fnv.to_hex out_digest,
    capture_hex sched,
    Fnv.to_hex (Res.Policy.timeline_digest policy) )

let test_policy_duplicate_stream () =
  let clean = policy_scenario ~seed:5L ~dup:false () in
  let noisy = policy_scenario ~seed:5L ~dup:true () in
  let d1, r1, o1, s1, t1 = clean and d2, r2, o2, s2, t2 = noisy in
  check_int "duplicates handled once" d1 d2;
  check_int "duplicates cause no extra restart" r1 r2;
  check_str "application state unchanged by duplicates" o1 o2;
  check_str "scheduler state unchanged by duplicates" s1 s2;
  check_str "decision timeline unchanged by duplicates" t1 t2

let test_same_seed_timeline () =
  let a = policy_scenario ~seed:9L ~dup:true () in
  let b = policy_scenario ~seed:9L ~dup:true () in
  let _, _, oa, sa, ta = a and _, _, ob, sb, tb = b in
  check_str "same-seed decision timelines are byte-identical" ta tb;
  check_str "same-seed scheduler state is byte-identical" sa sb;
  check_str "same-seed application state is byte-identical" oa ob

(* ------------------------------------------------------------------ *)
(* Tentpole: deterministic exponential backoff, capped; budget
   exhaustion ends in Failed *)

let backoff_config =
  {
    Res.Policy.default with
    Res.Policy.retry_backoff_base = 10_000;
    retry_backoff_mult = 3;
    retry_backoff_cap = 50_000;
  }

let crashy_scenario ~restart_limit ~crashes =
  let cluster = Cnk.Cluster.create ~dims:(2, 1, 1) () in
  Cnk.Cluster.boot_all cluster;
  let sim = Cnk.Cluster.sim cluster in
  let fabric = Bg_msg.Dcmf.make_fabric (Cnk.Cluster.machine cluster) in
  let sched = Ctl.Scheduler.create cluster in
  let policy = Res.Policy.attach ~config:backoff_config sched in
  let spec = ckpt_spec ~name:"crashy" ~steps:100 ~ckpt_every:10 () in
  let factory, outcomes = Res.Ckpt.job_factory ~fabric spec in
  let jid = Ctl.Scheduler.submit_factory sched ~restart_limit ~shape:(1, 1, 1) factory in
  List.iter
    (fun cycle ->
      ignore
        (Sim.schedule_at sim cycle (fun () -> Ctl.Scheduler.job_crashed sched ~rank:0)))
    crashes;
  Ctl.Scheduler.drain sched;
  (sched, policy, jid, spec, outcomes)

let backoff_delays policy =
  List.filter_map
    (fun (_, line) ->
      try Some (Scanf.sscanf line "backoff jid=%d attempt=%d delay=%d" (fun _ _ d -> d))
      with Scanf.Scan_failure _ | End_of_file -> None)
    (Res.Policy.timeline policy)

let test_backoff_determinism () =
  let sched, policy, jid, spec, outcomes =
    crashy_scenario ~restart_limit:3 ~crashes:[ 3_000_000; 6_000_000; 9_000_000 ]
  in
  (match Ctl.Scheduler.state sched jid with
  | Ctl.Scheduler.Completed _ -> ()
  | _ -> Alcotest.fail "job did not survive its restart budget");
  check_int "three delayed retries" 3 (Res.Policy.retries_delayed policy);
  Alcotest.(check (list int))
    "exponential schedule, capped: base*mult^(n-1) up to the cap"
    [ 10_000; 30_000; 50_000 ] (backoff_delays policy);
  match outcomes () with
  | [ o ] ->
    check_digest spec o;
    check_bool "final incarnation resumed from a checkpoint" true
      (o.Res.Ckpt.restored_step > 0)
  | _ -> Alcotest.fail "outcome count"

let test_budget_exhaustion () =
  let sched, policy, jid, _, _ =
    crashy_scenario ~restart_limit:1 ~crashes:[ 3_000_000; 6_000_000 ]
  in
  (match Ctl.Scheduler.state sched jid with
  | Ctl.Scheduler.Failed _ -> ()
  | _ -> Alcotest.fail "exhausted budget must end in Failed");
  check_int "one retry was granted" 1 (Res.Policy.retries_delayed policy);
  check_int "one restart spent" 1 (Ctl.Scheduler.restarts sched jid)

(* ------------------------------------------------------------------ *)
(* Tentpole: spare-node substitution restores capacity in-window *)

let test_spare_substitution () =
  let cluster = Cnk.Cluster.create ~dims:(4, 1, 1) () in
  Cnk.Cluster.boot_all cluster;
  let sim = Cnk.Cluster.sim cluster in
  let fabric = Bg_msg.Dcmf.make_fabric (Cnk.Cluster.machine cluster) in
  let sched = Ctl.Scheduler.create cluster in
  Ctl.Partition.set_spare (Ctl.Scheduler.partition sched) ~rank:3 true;
  let inj = Res.Injector.attach cluster in
  let policy = Res.Policy.attach sched in
  let spec = ckpt_spec ~name:"spare" () in
  let factory, outcomes = Res.Ckpt.job_factory ~fabric spec in
  let jid = Ctl.Scheduler.submit_factory sched ~restart_limit:2 ~shape:(2, 1, 1) factory in
  ignore
    (Sim.schedule_at sim 2_600_000 (fun () ->
         Res.Injector.inject_now inj (Res.Fault_event.Node_death { rank = 0 })));
  Ctl.Scheduler.drain sched;
  (match Ctl.Scheduler.state sched jid with
  | Ctl.Scheduler.Completed _ -> ()
  | _ -> Alcotest.fail "job did not complete");
  let part = Ctl.Scheduler.partition sched in
  check_int "the spare was spent" 1 (Ctl.Partition.substitutions part);
  Alcotest.(check (list int)) "spare pool now empty" [] (Ctl.Partition.spare_ranks part);
  check_bool "substitution recorded on the timeline" true
    (List.exists
       (fun (_, line) -> line = "substitute dead=0 spare=3")
       (Res.Policy.timeline policy));
  List.iter
    (fun (o : Res.Ckpt.outcome) ->
      check_digest spec o;
      check_bool "resumed from a committed checkpoint" true
        (o.Res.Ckpt.restored_step > 0);
      check_bool "relaunched clear of the dead node" true (o.Res.Ckpt.machine_rank <> 0))
    (outcomes ())

(* ------------------------------------------------------------------ *)
(* Tentpole: graceful-degradation tier walk, gauge included *)

let degrade_config =
  {
    Res.Policy.default with
    Res.Policy.degraded_after = 2;
    critical_after = 3;
    recovery_cooldown = 400_000;
    shape_cap_degraded = Some (1, 1, 1);
  }

let test_degradation_tiers () =
  let cluster = Cnk.Cluster.create ~dims:(4, 1, 1) () in
  let obs = Machine.obs (Cnk.Cluster.machine cluster) in
  Obs.set_enabled obs true;
  Cnk.Cluster.boot_all cluster;
  let sim = Cnk.Cluster.sim cluster in
  let sched = Ctl.Scheduler.create ~backfill:true cluster in
  let inj = Res.Injector.attach cluster in
  let policy = Res.Policy.attach ~config:degrade_config sched in
  let consume_job name cycles ~ranks:_ =
    Job.create ~name (Image.executable ~name (fun () -> Coro.consume cycles))
  in
  let _main =
    Ctl.Scheduler.submit_factory sched ~shape:(1, 1, 1) (consume_job "main" 5_000_000)
  in
  (* queued backfill that can never start while main holds a node — the
     machine sheds it the moment it degrades *)
  let filler =
    Ctl.Scheduler.submit_factory sched ~cls:Ctl.Scheduler.Backfill_class
      ~shape:(4, 1, 1) (consume_job "filler" 10_000)
  in
  let capped = ref None in
  let gauge () = Obs.gauge_value obs ~subsystem:"policy" ~name:"health_state" () in
  let link rank dir =
    Res.Injector.inject_now inj (Res.Fault_event.Link_failure { rank; dir })
  in
  let at cycle f = ignore (Sim.schedule_at sim cycle f) in
  at 2_000_000 (fun () ->
      link 1 0;
      link 2 1);
  at 2_050_000 (fun () ->
      check_bool "two pressure events: Degraded" true
        (Res.Policy.health policy = Res.Policy.Degraded);
      check_bool "gauge mirrors Degraded" true (gauge () = Some 1);
      check_int "backfill shed on entering Degraded" 1 (Res.Policy.jobs_shed policy);
      (match Ctl.Scheduler.state sched filler with
      | Ctl.Scheduler.Failed _ -> ()
      | _ -> Alcotest.fail "shed backfill must be Failed");
      (* a batch job over the cap queues even though space is free *)
      capped :=
        Some
          (Ctl.Scheduler.submit_factory sched ~shape:(2, 1, 1)
             (consume_job "capped" 100_000)));
  at 2_100_000 (fun () -> link 3 2);
  at 2_150_000 (fun () ->
      check_bool "third pressure event: Critical" true
        (Res.Policy.health policy = Res.Policy.Critical);
      check_bool "gauge mirrors Critical" true (gauge () = Some 2);
      check_bool "admission closed while Critical" true
        (not (Ctl.Scheduler.admission_open sched));
      match
        Ctl.Scheduler.offer_factory sched ~shape:(1, 1, 1) (consume_job "refused" 10)
      with
      | Error `Admission_closed -> ()
      | Ok _ -> Alcotest.fail "offer accepted while Critical");
  at 2_300_000 (fun () ->
      match !capped with
      | Some jid when Ctl.Scheduler.state sched jid = Ctl.Scheduler.Queued -> ()
      | Some _ -> Alcotest.fail "capped job ran under the shape cap"
      | None -> Alcotest.fail "capped job never submitted");
  Ctl.Scheduler.drain sched;
  (* quiet cooldowns stepped the machine back down, one tier at a time *)
  check_bool "back to Healthy" true (Res.Policy.health policy = Res.Policy.Healthy);
  check_bool "gauge back to 0" true (gauge () = Some 0);
  check_bool "admission reopened" true (Ctl.Scheduler.admission_open sched);
  check_bool "shape cap lifted" true (Ctl.Scheduler.shape_cap sched = None);
  check_int "four transitions: up two tiers, down two tiers" 4
    (Res.Policy.transitions policy);
  check_int "the refused offer was counted" 1 (Ctl.Scheduler.rejected_count sched);
  (match !capped with
  | Some jid -> (
    match Ctl.Scheduler.state sched jid with
    | Ctl.Scheduler.Completed _ -> ()
    | _ -> Alcotest.fail "capped job must run once the cap lifts")
  | None -> Alcotest.fail "capped job never submitted")

(* ------------------------------------------------------------------ *)
(* Tentpole: CIOD escalation ladder — restart within budget, then
   drain the pset, rebuild it after quarantine *)

let ladder_config =
  {
    Res.Policy.default with
    Res.Policy.retry_backoff_base = 10_000;
    ciod_restart_budget = 1;
    ciod_restart_backoff = 20_000;
    ciod_crash_window = 1_000_000;
    pset_rebuild_after = 200_000;
  }

let test_ciod_ladder () =
  let cluster =
    Cnk.Cluster.create ~dims:(4, 1, 1) ~nodes_per_io_node:2
      ~cio:Bg_cio.Reliable.default_on ()
  in
  Cnk.Cluster.boot_all cluster;
  let sim = Cnk.Cluster.sim cluster in
  let fabric = Bg_msg.Dcmf.make_fabric (Cnk.Cluster.machine cluster) in
  let sched = Ctl.Scheduler.create cluster in
  let inj = Res.Injector.attach cluster in
  let policy = Res.Policy.attach ~config:ladder_config sched in
  let spec = ckpt_spec ~name:"ladder" ~steps:40 () in
  let factory, outcomes = Res.Ckpt.job_factory ~fabric spec in
  let jid = Ctl.Scheduler.submit_factory sched ~restart_limit:3 ~shape:(2, 1, 1) factory in
  let fatal cycle =
    ignore
      (Sim.schedule_at sim cycle (fun () ->
           Res.Injector.inject_now inj
             (Res.Fault_event.Ciod_crash { io_node = 0; fatal = true })))
  in
  fatal 2_400_000;
  (* within budget: restarted *)
  fatal 2_600_000;
  (* budget blown: drained *)
  Ctl.Scheduler.drain sched;
  check_int "first fatal spent the restart budget" 1 (Res.Policy.ciod_restarts policy);
  check_int "second fatal drained the pset" 1 (Res.Policy.psets_drained policy);
  check_int "exactly one pset lost" 1
    (Res.Recovery.psets_lost (Res.Policy.recovery policy));
  check_int "quarantine expired: pset rebuilt" 1 (Res.Policy.psets_rebuilt policy);
  (match Ctl.Scheduler.state sched jid with
  | Ctl.Scheduler.Completed _ -> ()
  | _ -> Alcotest.fail "job did not complete");
  check_int "one restart (the drain), not one per crash" 1
    (Ctl.Scheduler.restarts sched jid);
  Alcotest.(check (list int))
    "rebuild returned the drained ranks to the pool" []
    (Ctl.Partition.down_nodes (Ctl.Scheduler.partition sched));
  List.iter
    (fun (o : Res.Ckpt.outcome) ->
      check_digest spec o;
      check_bool "relaunched on the surviving pset" true (o.Res.Ckpt.machine_rank >= 2);
      check_bool "resumed from a committed checkpoint" true
        (o.Res.Ckpt.restored_step > 0))
    (outcomes ())

(* ------------------------------------------------------------------ *)

let suite =
  [
    Alcotest.test_case "duplicated death notices are no-ops" `Quick
      test_node_failed_idempotent;
    Alcotest.test_case "mark_down / node_failed / mark_up replay-safe" `Quick
      test_mark_down_replay_safe;
    Alcotest.test_case "kill sweep across the commit boundary never tears state"
      `Quick test_commit_boundary_kill;
    Alcotest.test_case "fuzz: final state is a function of the fault set" `Quick
      test_fuzz_fault_set;
    Alcotest.test_case "policy: duplicated fault stream changes nothing" `Quick
      test_policy_duplicate_stream;
    Alcotest.test_case "policy: same seed, byte-identical timeline" `Quick
      test_same_seed_timeline;
    Alcotest.test_case "policy: deterministic exponential backoff, capped" `Quick
      test_backoff_determinism;
    Alcotest.test_case "policy: exhausted restart budget ends in Failed" `Quick
      test_budget_exhaustion;
    Alcotest.test_case "policy: spare substitution restores capacity" `Quick
      test_spare_substitution;
    Alcotest.test_case "policy: degradation tier walk with gauge" `Quick
      test_degradation_tiers;
    Alcotest.test_case "policy: ciod restart -> drain -> rebuild ladder" `Quick
      test_ciod_ladder;
  ]
