(* Tests for causal tracing: same-seed graph determinism, zero-cost when
   the knob is off, context surviving CIO retransmission (at-most-once =
   one Request->Reply edge), critical-path attribution tiling the path
   exactly, flow-event JSON, and the span-ring overflow drop counter. *)

open Bg_engine
open Bg_kabi
module Obs = Bg_obs.Obs
module Causal = Bg_obs.Causal
module Accounting = Bg_obs.Accounting
module Export = Bg_obs.Export

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let check_string = Alcotest.(check string)

(* ------------------------------------------------------------------ *)
(* An I/O + allreduce workload on a small CNK cluster: syscalls ship to
   CIOD (Request->Reply edges), the collective contributes/delivers
   (Send_recv edges), the scheduler is not involved. *)

let nodes = 4

let allreduce_run ~seed ~causal_on =
  let cluster = Cnk.Cluster.create ~dims:(2, 2, 1) ~seed () in
  let machine = Cnk.Cluster.machine cluster in
  if causal_on then begin
    Obs.set_enabled (Machine.obs machine) true;
    Accounting.set_enabled (Machine.acct machine) true;
    Causal.set_enabled (Machine.causal machine) true
  end;
  Cnk.Cluster.boot_all cluster;
  let fabric = Bg_msg.Dcmf.make_fabric machine in
  for r = 0 to nodes - 1 do
    ignore (Bg_msg.Dcmf.attach fabric ~rank:r)
  done;
  let coll = Bg_msg.Mpi.Coll.create fabric ~participants:nodes in
  let entry, _ = Bg_apps.Allreduce_bench.program ~fabric ~coll ~iterations:3 () in
  Cnk.Cluster.run_job cluster
    (Job.create ~name:"allreduce" (Image.executable ~name:"allreduce" entry));
  (cluster, machine)

let test_same_seed_same_digest () =
  let _, a = allreduce_run ~seed:5L ~causal_on:true in
  let _, b = allreduce_run ~seed:5L ~causal_on:true in
  let ga = Machine.causal a and gb = Machine.causal b in
  check_bool "graph nonempty" true (Causal.node_count ga > 0);
  check_int "same node count" (Causal.node_count ga) (Causal.node_count gb);
  check_int "same edge count" (Causal.edge_count ga) (Causal.edge_count gb);
  check_string "same causal digest"
    (Fnv.to_hex (Causal.digest ga))
    (Fnv.to_hex (Causal.digest gb));
  check_bool "digest covers content" false (Fnv.equal (Causal.digest ga) Fnv.empty)

let test_sim_digest_unperturbed_by_causal () =
  let off, _ = allreduce_run ~seed:3L ~causal_on:false in
  let on_, on_machine = allreduce_run ~seed:3L ~causal_on:true in
  let d c = Fnv.to_hex (Trace.digest (Sim.trace (Cnk.Cluster.sim c))) in
  check_string "architectural trace identical with causal on vs off" (d off) (d on_);
  check_bool "and the graph actually recorded" true
    (Causal.node_count (Machine.causal on_machine) > 0)

(* ------------------------------------------------------------------ *)
(* Critical path + attribution *)

let test_critical_path_attribution_exact () =
  let _, machine = allreduce_run ~seed:7L ~causal_on:true in
  let g = Machine.causal machine in
  match Causal.last_matching g ~cat:"coll" ~name:"deliver" with
  | None -> Alcotest.fail "no collective delivery recorded"
  | Some c ->
    let path = Causal.critical_path g c in
    check_bool "path has at least contribute->complete->deliver" true
      (List.length path >= 3);
    (* timestamps never decrease along the path *)
    ignore
      (List.fold_left
         (fun prev (n : Causal.node) ->
           check_bool "monotone timestamps" true (n.Causal.at >= prev);
           n.Causal.at)
         0 path);
    let attr = Causal.attribute_path g (Machine.acct machine) path in
    let ledger_sum = List.fold_left (fun a (_, c) -> a + c) 0 attr.Causal.ledger in
    check_int "network + ledger tiles the path exactly" attr.Causal.total
      (attr.Causal.network + ledger_sum);
    let first = List.hd path and last = List.nth path (List.length path - 1) in
    check_int "total is the path length" (last.Causal.at - first.Causal.at)
      attr.Causal.total;
    check_bool "a straggler rank is named" true (attr.Causal.straggler >= 0)

(* ------------------------------------------------------------------ *)
(* Retransmission: a resent frame carries the SAME context, so the
   at-most-once replay cache yields exactly one Request->Reply edge. *)

let test_retransmit_one_request_reply_edge () =
  let machine = Machine.create ~dims:(2, 1, 1) () in
  let g = Machine.causal machine in
  Causal.set_enabled g true;
  let ciod = Bg_cio.Ciod.create machine ~config:Bg_cio.Reliable.default_on ~io_node:0 () in
  let replies = ref [] in
  Bg_cio.Ciod.register_node ciod ~rank:0 ~deliver:(fun b -> replies := b :: !replies);
  Bg_cio.Ciod.job_start ciod ~rank:0 ~pids:[ 1 ];
  let sim = machine.Machine.sim in
  let req_ctx =
    Causal.mint g ~cat:"test" ~name:"ship.request" ~rank:0 ~core:0 ~now:(Sim.now sim) ()
  in
  let frame =
    Bg_cio.Frame.encode
      {
        Bg_cio.Frame.kind = Bg_cio.Frame.Request;
        rank = 0;
        pid = 1;
        tid = 1;
        seq = 0;
        ctx = req_ctx;
        payload =
          Bg_cio.Proto.encode_request
            { Bg_cio.Proto.rank = 0; pid = 1; tid = 1 }
            (Sysreq.Open { path = "f"; flags = Sysreq.o_create_trunc; mode = 0o644 });
      }
  in
  Bg_cio.Ciod.submit ciod frame;
  ignore (Sim.run sim);
  (* the timeout path resends the encoded frame verbatim *)
  Bg_cio.Ciod.submit ciod (Bytes.copy frame);
  ignore (Sim.run sim);
  check_int "request executed once" 1 (Bg_cio.Ciod.requests_served ciod);
  check_int "duplicate hit the replay cache" 1 (Bg_cio.Ciod.retransmits_seen ciod);
  let rr_edges =
    List.filter (fun e -> e.Causal.kind = Causal.Request_reply) (Causal.edges g)
  in
  check_int "exactly one Request->Reply edge" 1 (List.length rr_edges);
  check_int "edge rooted at the shipped context" req_ctx
    (List.hd rr_edges).Causal.src;
  (* the reply frame carries the CIOD service node as its context *)
  (match !replies with
  | [] -> Alcotest.fail "no reply delivered"
  | b :: _ -> (
    match Bg_cio.Frame.decode b with
    | Ok f ->
      check_int "reply ctx is the service node" (List.hd rr_edges).Causal.dst
        f.Bg_cio.Frame.ctx
    | Error e -> Alcotest.fail (Bg_cio.Frame.error_message e)))

(* ------------------------------------------------------------------ *)
(* Flow-event export *)

let test_flow_event_golden () =
  let g = Causal.create ~seed:9 ~enabled:true () in
  let o = Obs.create () in
  let src = Causal.mint g ~chain:false ~cat:"msg" ~name:"send" ~rank:0 ~core:0 ~now:850 () in
  let dst = Causal.mint g ~chain:false ~cat:"msg" ~name:"recv" ~rank:1 ~core:2 ~now:1700 () in
  Causal.link g Causal.Send_recv ~src ~dst;
  let json = Export.chrome_trace ~causal:g o in
  (match Export.validate_json json with
  | Ok () -> ()
  | Error e -> Alcotest.failf "flow JSON invalid: %s" e);
  let contains sub =
    let n = String.length sub and m = String.length json in
    let rec at i = i + n <= m && (String.sub json i n = sub || at (i + 1)) in
    at 0
  in
  let s_event =
    "{\"name\":\"send->recv\",\"cat\":\"causal\",\"ph\":\"s\",\"id\":\"0x0\",\"ts\":1.000,\"pid\":0,\"tid\":0}"
  in
  let f_event =
    "{\"name\":\"send->recv\",\"cat\":\"causal\",\"ph\":\"f\",\"bp\":\"e\",\"id\":\"0x0\",\"ts\":2.000,\"pid\":1,\"tid\":2}"
  in
  check_bool "s event verbatim" true (contains s_event);
  check_bool "f event verbatim" true (contains f_event);
  (* both endpoint ranks got process-name metadata rows *)
  check_bool "src rank labelled" true (contains "\"pid\":0,\"args\":{\"name\":");
  check_bool "dst rank labelled" true (contains "\"pid\":1,\"args\":{\"name\":")

let test_validator_rejects_raw_control_chars () =
  (match Export.validate_json "{\"name\":\"a\tb\"}" with
  | Error _ -> ()
  | Ok () -> Alcotest.fail "raw tab inside a string must be rejected");
  (match Export.validate_json "{\"name\":\"a\001b\"}" with
  | Error _ -> ()
  | Ok () -> Alcotest.fail "raw 0x01 inside a string must be rejected");
  (* json_escape makes the same content legal *)
  match Export.validate_json ("{\"name\":\"" ^ Export.json_escape "a\t\001b\"" ^ "\"}") with
  | Ok () -> ()
  | Error e -> Alcotest.failf "escaped control chars must validate: %s" e

let test_flow_fields_escaped () =
  (* A hostile instrumentation name must not break the emitted JSON. *)
  let g = Causal.create ~enabled:true () in
  let o = Obs.create () in
  let src =
    Causal.mint g ~chain:false ~cat:"msg" ~name:"evil\"\n\001name" ~rank:0 ~core:0
      ~now:100 ()
  in
  let dst = Causal.mint g ~chain:false ~cat:"msg" ~name:"ok" ~rank:0 ~core:0 ~now:200 () in
  Causal.link g Causal.Send_recv ~src ~dst;
  match Export.validate_json (Export.chrome_trace ~causal:g o) with
  | Ok () -> ()
  | Error e -> Alcotest.failf "hostile names must still yield valid JSON: %s" e

(* ------------------------------------------------------------------ *)
(* Span-ring overflow: first-class drop counter per (rank, core) *)

let test_ring_overflow_drop_counter () =
  let o = Obs.create ~ring_capacity:4 ~enabled:true () in
  for i = 0 to 9 do
    Obs.span_record o ~cat:"t" ~name:"s" ~rank:2 ~core:1 ~start:(i * 10)
      ~finish:((i * 10) + 5)
  done;
  check_int "six spans evicted" 6 (Obs.dropped_spans o);
  check_int "per-scope drop counter" 6
    (Obs.counter_value o ~rank:2 ~core:1 ~subsystem:"obs" ~name:"dropped_spans" ());
  check_int "other scopes unaffected" 0
    (Obs.counter_value o ~rank:0 ~core:0 ~subsystem:"obs" ~name:"dropped_spans" ())

let suite =
  [
    Alcotest.test_case "same seed, same causal digest" `Quick test_same_seed_same_digest;
    Alcotest.test_case "sim digest unperturbed by causal" `Quick
      test_sim_digest_unperturbed_by_causal;
    Alcotest.test_case "critical path: attribution tiles exactly" `Quick
      test_critical_path_attribution_exact;
    Alcotest.test_case "retransmit reuses ctx: one Request->Reply edge" `Quick
      test_retransmit_one_request_reply_edge;
    Alcotest.test_case "flow events: golden JSON" `Quick test_flow_event_golden;
    Alcotest.test_case "validator rejects raw control chars" `Quick
      test_validator_rejects_raw_control_chars;
    Alcotest.test_case "flow fields escaped against hostile names" `Quick
      test_flow_fields_escaped;
    Alcotest.test_case "span-ring overflow drop counter" `Quick
      test_ring_overflow_drop_counter;
  ]
