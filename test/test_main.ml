let () =
  Alcotest.run "cnk-repro"
    [
      ("engine", Test_engine.suite);
      ("hw", Test_hw.suite);
      ("cio", Test_cio.suite);
      ("cio-reliable", Test_cio_reliable.suite);
      ("cnk", Test_cnk.suite);
      ("fwk", Test_fwk.suite);
      ("msg", Test_msg.suite);
      ("dma", Test_dma.suite);
      ("apps", Test_apps.suite);
      ("experiments", Test_experiments.suite);
      ("affinity", Test_affinity.suite);
      ("extensions", Test_extensions.suite);
      ("runtime", Test_runtime.suite);
      ("properties", Test_properties.suite);
      ("control", Test_control.suite);
      ("obs", Test_obs.suite);
      ("health", Test_health.suite);
      ("causal", Test_causal.suite);
      ("resilience", Test_resilience.suite);
      ("heal", Test_heal.suite);
      ("sched", Test_sched.suite);
      ("snap", Test_snap.suite);
    ]
