(* Tests for the reliable function-ship transport: CRC framing, hostile
   Proto decoding, retransmission under drop/corruption/duplication, the
   CIOD replay cache (write idempotency), crash/restart recovery from the
   job manifest, bounded-queue load shedding, and EIO surfacing when the
   retry budget runs out. *)

open Bg_engine
open Bg_kabi
open Bg_cio

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

(* ------------------------------------------------------------------ *)
(* Frame *)

let sample_frame =
  {
    Frame.kind = Frame.Request;
    rank = 11;
    pid = 2;
    tid = 35;
    seq = 7;
    ctx = 0;
    payload = Bytes.of_string "function-shipped request body";
  }

let test_frame_roundtrip () =
  List.iter
    (fun f ->
      match Frame.decode (Frame.encode f) with
      | Ok f' ->
        check_bool "kind" true (f'.Frame.kind = f.Frame.kind);
        check_int "rank" f.Frame.rank f'.Frame.rank;
        check_int "pid" f.Frame.pid f'.Frame.pid;
        check_int "tid" f.Frame.tid f'.Frame.tid;
        check_int "seq" f.Frame.seq f'.Frame.seq;
        Alcotest.(check bytes) "payload" f.Frame.payload f'.Frame.payload
      | Error e -> Alcotest.fail (Frame.error_message e))
    [
      sample_frame;
      { sample_frame with Frame.kind = Frame.Reply; seq = 0 };
      { sample_frame with Frame.kind = Frame.Ack; payload = Bytes.create 0 };
    ]

let test_frame_every_bit_flip_detected () =
  let encoded = Frame.encode sample_frame in
  for bit = 0 to (Bytes.length encoded * 8) - 1 do
    let copy = Bytes.copy encoded in
    let i = bit / 8 in
    Bytes.set_uint8 copy i (Bytes.get_uint8 copy i lxor (1 lsl (bit mod 8)));
    match Frame.decode copy with
    | Ok _ -> Alcotest.failf "bit flip %d went undetected" bit
    | Error _ -> ()
  done

let test_frame_truncation_detected () =
  let encoded = Frame.encode sample_frame in
  for len = 0 to Bytes.length encoded - 1 do
    match Frame.decode (Bytes.sub encoded 0 len) with
    | Ok _ -> Alcotest.failf "truncation to %d went undetected" len
    | Error _ -> ()
  done

(* ------------------------------------------------------------------ *)
(* Proto fuzz: hostile bytes must yield typed errors, never exceptions *)

let fuzz_corpus () =
  let hdr = { Proto.rank = 3; pid = 1; tid = 9 } in
  let valid =
    [
      Proto.encode_request hdr (Sysreq.Open { path = "/a/b"; flags = Sysreq.o_rdwr; mode = 0o600 });
      Proto.encode_request hdr (Sysreq.Write { fd = 4; data = Bytes.of_string "payload" });
      Proto.encode_request hdr (Sysreq.Readdir "/");
      Proto.encode_reply hdr (Sysreq.R_bytes (Bytes.of_string "reply data"));
      Proto.encode_reply hdr (Sysreq.R_names [ "x"; "y"; "z" ]);
      Proto.encode_reply hdr (Sysreq.R_err Errno.ENOENT);
    ]
  in
  let rng = Rng.create 42L in
  let corpus = ref [] in
  List.iter
    (fun good ->
      (* every truncation *)
      for len = 0 to Bytes.length good - 1 do
        corpus := Bytes.sub good 0 len :: !corpus
      done;
      (* seeded single- and multi-bit corruptions *)
      for _ = 1 to 200 do
        let c = Bytes.copy good in
        let flips = 1 + Rng.int rng 4 in
        for _ = 1 to flips do
          let bit = Rng.int rng (Bytes.length c * 8) in
          Bytes.set_uint8 c (bit / 8)
            (Bytes.get_uint8 c (bit / 8) lxor (1 lsl (bit mod 8)))
        done;
        corpus := c :: !corpus
      done)
    valid;
  (* pure noise *)
  for _ = 1 to 300 do
    let len = Rng.int rng 120 in
    let b = Bytes.init len (fun _ -> Char.chr (Rng.int rng 256)) in
    corpus := b :: !corpus
  done;
  !corpus

let test_proto_fuzz_never_raises () =
  List.iter
    (fun data ->
      (match Proto.decode_request data with Ok _ | Error (Proto.Malformed _) -> ());
      match Proto.decode_reply data with Ok _ | Error (Proto.Malformed _) -> ())
    (fuzz_corpus ())

let test_proto_truncated_is_malformed () =
  let hdr = { Proto.rank = 0; pid = 1; tid = 1 } in
  let good = Proto.encode_request hdr (Sysreq.Stat "/etc/motd") in
  for len = 0 to Bytes.length good - 1 do
    match Proto.decode_request (Bytes.sub good 0 len) with
    | Ok _ -> Alcotest.failf "truncated request of %d bytes decoded" len
    | Error (Proto.Malformed _) -> ()
  done

(* ------------------------------------------------------------------ *)
(* Ioproxy snapshot / idempotent close *)

let test_ioproxy_close_all_idempotent () =
  let fs = Fs.create () in
  let p = Ioproxy.create fs ~rank:0 ~pid:1 in
  ignore (Ioproxy.handle p (Sysreq.Open { path = "f"; flags = Sysreq.o_create_trunc; mode = 0o644 }));
  check_int "one fd" 1 (Ioproxy.open_fds p);
  Ioproxy.close_all p;
  check_bool "closed" true (Ioproxy.closed p);
  Ioproxy.close_all p;
  (* second teardown is a no-op, and the proxy refuses further work *)
  check_int "no fds" 0 (Ioproxy.open_fds p);
  match Ioproxy.handle p (Sysreq.Getcwd) with
  | Sysreq.R_err Errno.EBADF -> ()
  | _ -> Alcotest.fail "closed proxy accepted a request"

let test_ioproxy_snapshot_restore () =
  let fs = Fs.create () in
  let p = Ioproxy.create fs ~rank:0 ~pid:1 in
  ignore (Ioproxy.handle p (Sysreq.Mkdir { path = "/d"; mode = 0o755 }));
  ignore (Ioproxy.handle p (Sysreq.Chdir "/d"));
  let fd =
    Sysreq.expect_int
      (Ioproxy.handle p (Sysreq.Open { path = "f"; flags = Sysreq.o_create_trunc; mode = 0o644 }))
  in
  ignore (Ioproxy.handle p (Sysreq.Write { fd; data = Bytes.of_string "abcde" }));
  let snap = Ioproxy.snapshot p in
  let q = Ioproxy.restore fs ~rank:0 ~pid:1 snap in
  Alcotest.(check string) "cwd survives" "/d" (Ioproxy.cwd q);
  check_int "fd table survives" 1 (Ioproxy.open_fds q);
  (* the restored offset continues where the original left off *)
  check_int "append continues" 3
    (Sysreq.expect_int (Ioproxy.handle q (Sysreq.Write { fd; data = Bytes.of_string "fgh" })));
  let inode = Result.get_ok (Fs.resolve fs ~cwd:"/" "/d/f") in
  Alcotest.(check string) "contents" "abcdefgh"
    (Bytes.to_string (Result.get_ok (Fs.read fs inode ~offset:0 ~len:100)))

(* ------------------------------------------------------------------ *)
(* Manifest: ack keeps the seq watermark, reclaims only the frame *)

let test_manifest_ack_keeps_watermark () =
  let m = Manifest.create () in
  Manifest.record_reply m ~rank:0 ~pid:1 ~tid:2 ~seq:5 ~frame:(Bytes.of_string "r5");
  (match Manifest.last_reply m ~rank:0 ~pid:1 ~tid:2 with
  | Some (5, Some f) -> Alcotest.(check string) "frame cached" "r5" (Bytes.to_string f)
  | _ -> Alcotest.fail "expected cached frame at seq 5");
  (* a stale ack is a no-op *)
  Manifest.retire_reply m ~rank:0 ~pid:1 ~tid:2 ~seq:4;
  (match Manifest.last_reply m ~rank:0 ~pid:1 ~tid:2 with
  | Some (5, Some _) -> ()
  | _ -> Alcotest.fail "stale ack must not retire");
  Manifest.retire_reply m ~rank:0 ~pid:1 ~tid:2 ~seq:5;
  match Manifest.last_reply m ~rank:0 ~pid:1 ~tid:2 with
  | Some (5, None) -> ()
  | _ -> Alcotest.fail "ack must keep the seq watermark and drop only the bytes"

(* ------------------------------------------------------------------ *)
(* Ack reordered ahead of a straggling duplicate: the duplicate must be
   recognised via the acked-seq watermark, never re-executed. This is the
   jitter-inversion race: the Ack leaves ~epsilon after a timeout
   retransmit, so even modest network jitter can deliver it first. *)

let test_ack_before_duplicate_no_reexecution () =
  let machine = Machine.create ~dims:(2, 1, 1) () in
  let ciod = Ciod.create machine ~config:Reliable.default_on ~io_node:0 () in
  let replies = ref 0 in
  Ciod.register_node ciod ~rank:0 ~deliver:(fun _ -> incr replies);
  Ciod.job_start ciod ~rank:0 ~pids:[ 1 ];
  let sim = machine.Machine.sim in
  let request req ~seq =
    Frame.encode
      {
        Frame.kind = Frame.Request;
        rank = 0;
        pid = 1;
        tid = 1;
        seq;
        ctx = 0;
        payload = Proto.encode_request { Proto.rank = 0; pid = 1; tid = 1 } req;
      }
  in
  Ciod.submit ciod
    (request (Sysreq.Open { path = "f"; flags = Sysreq.o_create_trunc; mode = 0o644 })
       ~seq:0);
  ignore (Sim.run sim);
  let write = request (Sysreq.Write { fd = 3; data = Bytes.of_string "once" }) ~seq:1 in
  Ciod.submit ciod write;
  ignore (Sim.run sim);
  check_int "open + write served" 2 (Ciod.requests_served ciod);
  check_int "both replied" 2 !replies;
  (* The Ack for the write overtakes a straggling duplicate of it. *)
  Ciod.submit ciod
    (Frame.encode
       { Frame.kind = Frame.Ack; rank = 0; pid = 1; tid = 1; seq = 1; ctx = 0;
         payload = Bytes.create 0 });
  Ciod.submit ciod write;
  ignore (Sim.run sim);
  check_int "duplicate suppressed by watermark" 2 (Ciod.requests_served ciod);
  check_int "counted as retransmit" 1 (Ciod.retransmits_seen ciod);
  check_int "no reply for a sender no longer waiting" 2 !replies;
  let fs = Ciod.fs ciod in
  let inode = Result.get_ok (Fs.resolve fs ~cwd:"/" "/f") in
  Alcotest.(check string) "no double append" "once"
    (Bytes.to_string (Result.get_ok (Fs.read fs inode ~offset:0 ~len:100)))

(* ------------------------------------------------------------------ *)
(* Legacy (lossless) transport: a crashed daemon drops submissions
   instead of servicing them against freshly-reset proxies. *)

let test_legacy_transport_dead_ciod_drops () =
  let machine = Machine.create ~dims:(2, 1, 1) () in
  let ciod = Ciod.create machine ~io_node:0 () in
  let replies = ref 0 in
  Ciod.register_node ciod ~rank:0 ~deliver:(fun _ -> incr replies);
  Ciod.job_start ciod ~rank:0 ~pids:[ 1 ];
  Ciod.crash ciod;
  let req =
    Proto.encode_request { Proto.rank = 0; pid = 1; tid = 1 }
      (Sysreq.Open { path = "f"; flags = Sysreq.o_create_trunc; mode = 0o644 })
  in
  Ciod.submit ciod req;
  ignore (Sim.run machine.Machine.sim);
  check_int "dead daemon serves nothing" 0 (Ciod.requests_served ciod);
  check_int "no reply from the dead" 0 !replies;
  Ciod.restart ciod;
  Ciod.submit ciod req;
  ignore (Sim.run machine.Machine.sim);
  check_int "served after restart" 1 (Ciod.requests_served ciod);
  check_int "replied after restart" 1 !replies

(* ------------------------------------------------------------------ *)
(* End-to-end harness *)

let chunk_bytes = 512
let chunks = 4

let expected_content rank =
  let b = Buffer.create (chunk_bytes * chunks) in
  for chunk = 0 to chunks - 1 do
    Buffer.add_bytes b (Bytes.make chunk_bytes (Char.chr (65 + ((rank + chunk) mod 26))))
  done;
  Buffer.contents b

(* Per-rank writer + read-back verifier; strictly per-rank files so
   fault-induced reordering across ranks cannot change any file's bytes. *)
let workload () =
  let rank = Bg_rt.Libc.rank () in
  let path = Printf.sprintf "/rank-%02d.dat" rank in
  let fd =
    Bg_rt.Libc.openf ~flags:{ Sysreq.o_rdwr with Sysreq.creat = true; trunc = true } path
  in
  for chunk = 0 to chunks - 1 do
    let payload = Bytes.make chunk_bytes (Char.chr (65 + ((rank + chunk) mod 26))) in
    assert (Bg_rt.Libc.write fd payload = chunk_bytes)
  done;
  Bg_rt.Libc.fsync fd;
  let back = Bg_rt.Libc.pread fd ~len:(chunk_bytes * chunks) ~offset:0 in
  assert (Bytes.to_string back = expected_content rank);
  Bg_rt.Libc.close fd

let file_content cluster rank =
  let fs = Cnk.Cluster.fs cluster in
  let inode =
    Result.get_ok (Fs.resolve fs ~cwd:"/" (Printf.sprintf "/rank-%02d.dat" rank))
  in
  Bytes.to_string (Result.get_ok (Fs.read fs inode ~offset:0 ~len:(Fs.size fs inode)))

let run_cluster ?(seed = 1L) ?(cio = Reliable.default_on) ?(faults = Bg_hw.Collective_net.no_faults)
    ?before_run () =
  let cluster = Cnk.Cluster.create ~seed ~dims:(2, 2, 1) ~nodes_per_io_node:2 ~cio () in
  Cnk.Cluster.boot_all cluster;
  let machine = Cnk.Cluster.machine cluster in
  Bg_obs.Obs.set_enabled machine.Machine.obs true;
  Bg_hw.Collective_net.set_fault_config machine.Machine.collective faults;
  (match before_run with Some f -> f cluster | None -> ());
  let image = Image.executable ~name:"chaos" workload in
  Cnk.Cluster.run_job cluster (Job.create ~name:"chaos" image);
  cluster

let check_all_files cluster =
  for rank = 0 to 3 do
    Alcotest.(check string)
      (Printf.sprintf "rank %d file" rank)
      (expected_content rank) (file_content cluster rank)
  done

let test_reliable_mode_faultless () =
  (* Sanity: the framed transport with no faults behaves like the raw one. *)
  let cluster = run_cluster () in
  check_all_files cluster;
  let ciod = Cnk.Cluster.ciod cluster ~io_node:0 in
  check_bool "requests served" true (Ciod.requests_served ciod > 0);
  check_int "no retransmits seen" 0 (Ciod.retransmits_seen ciod)

let test_retransmission_under_drop () =
  let faults = { Bg_hw.Collective_net.no_faults with Bg_hw.Collective_net.drop_rate = 0.2 } in
  let cluster = run_cluster ~faults () in
  check_all_files cluster;
  let machine = Cnk.Cluster.machine cluster in
  check_bool "drops occurred" true (Bg_hw.Collective_net.drops machine.Machine.collective > 0);
  let o = machine.Machine.obs in
  check_bool "retransmits happened" true
    (Bg_obs.Obs.counter_total o ~subsystem:"cio" ~name:"retransmits" > 0);
  check_int "no EIO" 0 (Bg_obs.Obs.counter_total o ~subsystem:"cio" ~name:"eio")

let test_write_idempotent_under_duplication () =
  let faults = { Bg_hw.Collective_net.no_faults with Bg_hw.Collective_net.dup_rate = 0.5 } in
  let cluster = run_cluster ~faults () in
  (* Duplicated requests re-execute nothing: every file has exactly its
     expected bytes, no double-append. *)
  check_all_files cluster;
  let machine = Cnk.Cluster.machine cluster in
  check_bool "duplicates injected" true
    (Bg_hw.Collective_net.duplicates machine.Machine.collective > 0);
  let dups_seen =
    Ciod.retransmits_seen (Cnk.Cluster.ciod cluster ~io_node:0)
    + Ciod.retransmits_seen (Cnk.Cluster.ciod cluster ~io_node:1)
  in
  check_bool "replay cache hit" true (dups_seen > 0)

let test_corruption_detected_and_retried () =
  let faults =
    { Bg_hw.Collective_net.no_faults with Bg_hw.Collective_net.corrupt_rate = 0.25 }
  in
  let cluster = run_cluster ~faults () in
  check_all_files cluster;
  let machine = Cnk.Cluster.machine cluster in
  check_bool "corruptions injected" true
    (Bg_hw.Collective_net.corruptions machine.Machine.collective > 0)

let trace_digest cluster =
  Fnv.to_hex (Trace.digest (Sim.trace (Cnk.Cluster.sim cluster)))

let test_chaos_run_deterministic () =
  let faults =
    {
      Bg_hw.Collective_net.drop_rate = 0.15;
      corrupt_rate = 0.1;
      dup_rate = 0.1;
      jitter_max = 300;
    }
  in
  let a = run_cluster ~faults () in
  let b = run_cluster ~faults () in
  check_all_files a;
  Alcotest.(check string) "same digest" (trace_digest a) (trace_digest b)

let test_ciod_crash_restart_e2e () =
  let crash_at = 50_000 and restart_at = 170_000 in
  let cluster =
    run_cluster
      ~faults:{ Bg_hw.Collective_net.no_faults with Bg_hw.Collective_net.drop_rate = 0.05 }
      ~before_run:(fun cluster ->
        let sim = Cnk.Cluster.sim cluster in
        let ciod = Cnk.Cluster.ciod cluster ~io_node:0 in
        ignore (Sim.schedule_in sim crash_at (fun () -> Ciod.crash ciod));
        ignore (Sim.schedule_in sim restart_at (fun () -> Ciod.restart ciod)))
      ()
  in
  (* The daemon died mid-job and came back from the manifest; every rank's
     file must still be byte-perfect. *)
  check_all_files cluster;
  let ciod = Cnk.Cluster.ciod cluster ~io_node:0 in
  check_int "one crash" 1 (Ciod.crashes ciod)

let test_bounded_queue_sheds_and_recovers () =
  let cio = { Reliable.default_on with Reliable.queue_limit = 1; rto_cycles = 20_000 } in
  let cluster = run_cluster ~cio () in
  (* With a queue bound of 1, concurrent ranks behind one I/O node force
     rejects; timeouts re-drive them and the job still completes. *)
  check_all_files cluster;
  let rejects =
    Ciod.queue_rejects (Cnk.Cluster.ciod cluster ~io_node:0)
    + Ciod.queue_rejects (Cnk.Cluster.ciod cluster ~io_node:1)
  in
  check_bool "queue shed load" true (rejects > 0)

let test_eio_after_retry_budget () =
  let cio =
    { Reliable.default_on with Reliable.rto_cycles = 5_000; retry_budget = 3 }
  in
  let cluster = Cnk.Cluster.create ~seed:1L ~dims:(2, 1, 1) ~nodes_per_io_node:2 ~cio () in
  Cnk.Cluster.boot_all cluster;
  let machine = Cnk.Cluster.machine cluster in
  Bg_obs.Obs.set_enabled machine.Machine.obs true;
  (* Total loss: nothing ever reaches the I/O node. *)
  Bg_hw.Collective_net.set_fault_config machine.Machine.collective
    { Bg_hw.Collective_net.no_faults with Bg_hw.Collective_net.drop_rate = 1.0 };
  let ras_budget_exhausted = ref 0 in
  Machine.on_ras machine (fun ~rank:_ ~severity ~message ->
      let has sub =
        let n = String.length sub and m = String.length message in
        let rec at i = i + n <= m && (String.sub message i n = sub || at (i + 1)) in
        at 0
      in
      if severity = Machine.Ras_error && has "retry budget exhausted" then
        incr ras_budget_exhausted);
  let got_eio = ref 0 in
  let program () =
    (try ignore (Bg_rt.Libc.openf ~flags:Sysreq.o_create_trunc "f") with
    | Sysreq.Syscall_error Errno.EIO -> incr got_eio)
  in
  let image = Image.executable ~name:"eio" program in
  Cnk.Cluster.run_job cluster (Job.create ~name:"eio" image);
  check_int "both ranks got EIO" 2 !got_eio;
  check_bool "RAS events emitted" true (!ras_budget_exhausted >= 2);
  check_int "obs counter" 2
    (Bg_obs.Obs.counter_total machine.Machine.obs ~subsystem:"cio" ~name:"eio")

(* ------------------------------------------------------------------ *)
(* Fatal CIOD crash escalates to pset-wide job failure *)

let test_fatal_ciod_crash_fails_pset () =
  let cluster = Cnk.Cluster.create ~seed:1L ~dims:(2, 2, 1) ~nodes_per_io_node:2
      ~cio:Reliable.default_on ()
  in
  Cnk.Cluster.boot_all cluster;
  let scheduler = Bg_control.Scheduler.create cluster in
  let recovery = Bg_resilience.Recovery.attach scheduler in
  let injector = Bg_resilience.Injector.attach cluster in
  let sim = Cnk.Cluster.sim cluster in
  ignore
    (Sim.schedule_in sim 50_000 (fun () ->
         Bg_resilience.Injector.inject_now injector
           (Bg_resilience.Fault_event.Ciod_crash { io_node = 0; fatal = true })));
  let image = Image.executable ~name:"w" workload in
  ignore
    (Bg_control.Scheduler.submit scheduler ~shape:(2, 2, 1)
       (Job.create ~name:"doomed" image));
  Bg_control.Scheduler.drain scheduler;
  check_int "pset escalated" 1 (Bg_resilience.Recovery.psets_lost recovery);
  (* both compute nodes of the dead pset are out of the allocation pool *)
  let partition = Bg_control.Scheduler.partition scheduler in
  check_bool "rank 0 down" true (Bg_control.Partition.is_down partition ~rank:0);
  check_bool "rank 1 down" true (Bg_control.Partition.is_down partition ~rank:1);
  check_bool "rank 2 alive" false (Bg_control.Partition.is_down partition ~rank:2)

let suite =
  [
    Alcotest.test_case "frame: roundtrip" `Quick test_frame_roundtrip;
    Alcotest.test_case "frame: every bit flip detected" `Quick
      test_frame_every_bit_flip_detected;
    Alcotest.test_case "frame: truncation detected" `Quick test_frame_truncation_detected;
    Alcotest.test_case "proto: fuzz corpus never raises" `Quick test_proto_fuzz_never_raises;
    Alcotest.test_case "proto: truncations are Malformed" `Quick
      test_proto_truncated_is_malformed;
    Alcotest.test_case "ioproxy: close_all idempotent" `Quick
      test_ioproxy_close_all_idempotent;
    Alcotest.test_case "ioproxy: snapshot/restore" `Quick test_ioproxy_snapshot_restore;
    Alcotest.test_case "manifest: ack keeps seq watermark" `Quick
      test_manifest_ack_keeps_watermark;
    Alcotest.test_case "ciod: ack before duplicate, no re-execution" `Quick
      test_ack_before_duplicate_no_reexecution;
    Alcotest.test_case "ciod: legacy transport drops while dead" `Quick
      test_legacy_transport_dead_ciod_drops;
    Alcotest.test_case "reliable: faultless e2e" `Quick test_reliable_mode_faultless;
    Alcotest.test_case "reliable: retransmission under 20% drop" `Quick
      test_retransmission_under_drop;
    Alcotest.test_case "reliable: write idempotent under duplication" `Quick
      test_write_idempotent_under_duplication;
    Alcotest.test_case "reliable: corruption detected + retried" `Quick
      test_corruption_detected_and_retried;
    Alcotest.test_case "reliable: chaos run deterministic" `Quick
      test_chaos_run_deterministic;
    Alcotest.test_case "reliable: CIOD crash/restart e2e" `Quick
      test_ciod_crash_restart_e2e;
    Alcotest.test_case "reliable: bounded queue sheds + recovers" `Quick
      test_bounded_queue_sheds_and_recovers;
    Alcotest.test_case "reliable: EIO after retry budget" `Quick
      test_eio_after_retry_budget;
    Alcotest.test_case "reliable: fatal CIOD crash fails pset" `Quick
      test_fatal_ciod_crash_fails_pset;
  ]
