(* Tests for the torus DMA engine and the messaging paths built on it
   (paper §V.C): byte-decrement completion counters, injection-FIFO
   stall-on-full backpressure, the eager/rendezvous crossover, the
   CNK-beats-FWK latency ordering, run-to-run determinism of the DMA
   path, and the broken-link-under-traffic RAS event consumed by the
   resilience layer. *)

open Bg_engine
open Bg_kabi
module Dma = Bg_hw.Dma
module Torus = Bg_hw.Torus
module Mb = Bg_msgbench.Msgbench
module Ctl = Bg_control
module Res = Bg_resilience

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let inject_ok engine d =
  match Dma.inject engine d with
  | Ok () -> ()
  | Error `Fifo_full -> Alcotest.fail "unexpected Fifo_full"

(* ------------------------------------------------------------------ *)
(* Completion counters: armed at inject, decremented to zero by the
   last byte, completion cycle latched. *)

let test_counter_put () =
  let m = Machine.create ~dims:(2, 1, 1) () in
  let e0 = Machine.dma m 0 and e1 = Machine.dma m 1 in
  let landed = ref None in
  Dma.set_write_hook e1 (fun ~tag ~data ->
      if tag = 9 then landed := Some (Bytes.to_string data));
  inject_ok e0
    (Dma.descriptor ~kind:Dma.Rdma_put ~dst:1 ~tag:9
       ~payload:(Bytes.make 64 'p') ~bytes:64 ~counter:0 ());
  check_int "counter armed with the transfer size" 64 (Dma.counter_value e0 ~id:0);
  check_bool "not complete before the sim runs" true
    (Dma.counter_done_at e0 ~id:0 = None);
  ignore (Sim.run (Machine.sim m));
  check_int "counter decremented to zero" 0 (Dma.counter_value e0 ~id:0);
  check_bool "completion cycle latched" true (Dma.counter_done_at e0 ~id:0 <> None);
  Alcotest.(check (option string)) "payload landed via the write hook"
    (Some (String.make 64 'p')) !landed;
  check_int "target delivered one transfer" 1 (Dma.stats e1).Dma.delivered

let test_counter_get () =
  let m = Machine.create ~dims:(2, 1, 1) () in
  let e0 = Machine.dma m 0 and e1 = Machine.dma m 1 in
  Dma.set_read_hook e1 (fun ~tag ->
      if tag = 4 then Bytes.make 128 'g' else Bytes.empty);
  let got = ref None in
  Dma.set_write_hook e0 (fun ~tag ~data ->
      if tag = 4 then got := Some (Bytes.to_string data));
  inject_ok e0 (Dma.descriptor ~kind:Dma.Rdma_get ~dst:1 ~tag:4 ~bytes:128 ~counter:2 ());
  check_int "counter armed with the bytes to pull" 128 (Dma.counter_value e0 ~id:2);
  ignore (Sim.run (Machine.sim m));
  check_int "counter decremented to zero" 0 (Dma.counter_value e0 ~id:2);
  check_bool "completion cycle latched" true (Dma.counter_done_at e0 ~id:2 <> None);
  Alcotest.(check (option string)) "remote buffer streamed back"
    (Some (String.make 128 'g')) !got

(* ------------------------------------------------------------------ *)
(* Injection FIFO backpressure: a full FIFO refuses the descriptor and
   counts a stall; a launched descriptor frees the slot. *)

let test_fifo_stall_on_full () =
  let m = Machine.create ~dma_fifo_depth:2 ~dims:(2, 1, 1) () in
  let e0 = Machine.dma m 0 in
  let desc tag =
    Dma.descriptor ~kind:Dma.Eager ~dst:1 ~tag ~payload:(Bytes.make 8 'e') ~bytes:8 ()
  in
  inject_ok e0 (desc 0);
  inject_ok e0 (desc 1);
  check_int "FIFO at depth" 2 (Dma.injection_occupancy e0);
  (match Dma.inject e0 (desc 2) with
  | Error `Fifo_full -> ()
  | Ok () -> Alcotest.fail "third inject should stall on a depth-2 FIFO");
  check_int "stall counted" 1 (Dma.stats e0).Dma.inject_stalls;
  check_int "stalled descriptor not queued" 2 (Dma.injection_occupancy e0);
  ignore (Sim.run (Machine.sim m));
  (* the engine drained the FIFO; the retried injection now lands *)
  inject_ok e0 (desc 2);
  ignore (Sim.run (Machine.sim m));
  check_int "all three delivered after the retry" 3
    (Dma.stats (Machine.dma m 1)).Dma.delivered

(* ------------------------------------------------------------------ *)
(* Table I structure over the real descriptor path. *)

let test_eager_rendezvous_crossover () =
  let r = Mb.run_cnk ~sizes:[ 32; 16384 ] ~reps:1 () in
  let lat layer bytes = Option.get (Mb.find_latency r ~layer ~bytes) in
  check_bool "eager wins small messages" true
    (lat "dcmf_eager" 32 < lat "dcmf_rndv" 32);
  check_bool "rendezvous wins large messages" true
    (lat "dcmf_rndv" 16384 < lat "dcmf_eager" 16384);
  Alcotest.(check (option int)) "crossover at the large size" (Some 16384)
    (Mb.crossover r)

let test_cnk_beats_fwk () =
  let sizes = [ 1024 ] and reps = 2 in
  let cnk = Mb.run_cnk ~sizes ~reps () in
  let fwk = Mb.run_fwk ~sizes ~reps ~tick:false () in
  List.iter
    (fun layer ->
      let c = Option.get (Mb.find_latency cnk ~layer ~bytes:1024) in
      let f = Option.get (Mb.find_latency fwk ~layer ~bytes:1024) in
      check_bool
        (Printf.sprintf "%s: user-space DMA under kernel-mediated (%d < %d)" layer c f)
        true (c < f))
    Mb.layers

let test_dma_path_determinism () =
  let run () =
    let sizes = [ 32; 1024 ] and reps = 2 in
    Mb.digest [ Mb.run_cnk ~sizes ~reps (); Mb.run_fwk ~sizes ~reps ~tick:true () ]
  in
  Alcotest.(check string) "two same-seed runs digest identically" (run ()) (run ())

(* ------------------------------------------------------------------ *)
(* A link severed under an active DMA transfer is a RAS event. *)

let test_link_down_under_dma_raises_ras () =
  let m = Machine.create ~dims:(4, 1, 1) () in
  let events = ref [] in
  Machine.on_ras m (fun ~rank:_ ~severity ~message ->
      events := (severity, message) :: !events);
  inject_ok (Machine.dma m 0)
    (Dma.descriptor ~kind:Dma.Rdma_put ~dst:1 ~tag:1
       ~payload:(Bytes.make 65536 'x') ~bytes:65536 ~counter:0 ());
  let sim = Machine.sim m in
  let t0 = Sim.now sim in
  (* sever the +x link the 0->1 put crosses while its payload serializes *)
  ignore
    (Sim.schedule_at sim (t0 + 2_000) (fun () ->
         check_bool "transfer in flight on the severed link" true
           (Torus.link_in_flight m.Machine.torus ~rank:0 ~dir:0 > 0);
         Torus.set_link_broken m.Machine.torus ~rank:0 ~dir:0 true));
  ignore (Sim.run ~until:(t0 + 1_000_000) sim);
  match !events with
  | [ (sev, message) ] ->
    check_bool "error severity" true (sev = Machine.Ras_error);
    (match Res.Fault_event.of_message message with
    | Some (Res.Fault_event.Link_failure { rank; dir }) ->
      check_int "failed link rank" 0 rank;
      check_int "failed link dir" 0 dir
    | _ -> Alcotest.fail ("RAS message did not parse as Link_failure: " ^ message))
  | [] -> Alcotest.fail "no RAS event for a link severed under traffic"
  | _ -> Alcotest.fail "expected exactly one RAS event"

let test_link_failure_reaches_recovery () =
  let cluster = Cnk.Cluster.create ~dims:(4, 1, 1) () in
  Cnk.Cluster.boot_all cluster;
  let sched = Ctl.Scheduler.create cluster in
  let recov = Res.Recovery.attach sched in
  let m = Cnk.Cluster.machine cluster in
  inject_ok (Machine.dma m 0)
    (Dma.descriptor ~kind:Dma.Rdma_put ~dst:1 ~tag:1
       ~payload:(Bytes.make 65536 'x') ~bytes:65536 ~counter:0 ());
  let sim = Cnk.Cluster.sim cluster in
  let t0 = Sim.now sim in
  ignore
    (Sim.schedule_at sim (t0 + 2_000) (fun () ->
         Torus.set_link_broken m.Machine.torus ~rank:0 ~dir:0 true));
  ignore (Sim.run ~until:(t0 + 1_000_000) sim);
  check_int "recovery consumed the link event" 1 (Res.Recovery.link_events_seen recov)

let suite =
  [
    Alcotest.test_case "counter: put decrements to zero" `Quick test_counter_put;
    Alcotest.test_case "counter: get decrements to zero" `Quick test_counter_get;
    Alcotest.test_case "injection FIFO stalls on full" `Quick test_fifo_stall_on_full;
    Alcotest.test_case "eager/rendezvous crossover" `Quick test_eager_rendezvous_crossover;
    Alcotest.test_case "CNK beats FWK at every layer" `Quick test_cnk_beats_fwk;
    Alcotest.test_case "DMA path is deterministic" `Quick test_dma_path_determinism;
    Alcotest.test_case "link down under DMA raises RAS" `Quick
      test_link_down_under_dma_raises_ras;
    Alcotest.test_case "link failure reaches Recovery" `Quick
      test_link_failure_reaches_recovery;
  ]
