(* Tests for the observability layer: span rings, metrics registry,
   exporters — and the invariant the whole design hangs on: turning
   collection on must not perturb the simulated machine. *)

open Bg_engine
open Bg_kabi
module Obs = Bg_obs.Obs
module Export = Bg_obs.Export
module Accounting = Bg_obs.Accounting
module Upc = Bg_hw.Upc
module Rt = Bg_rt

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

(* ------------------------------------------------------------------ *)
(* Span rings *)

let test_ring_wraparound () =
  let o = Obs.create ~ring_capacity:4 ~enabled:true () in
  for i = 0 to 9 do
    Obs.span_record o ~cat:"t" ~name:(Printf.sprintf "s%d" i) ~rank:0 ~core:0
      ~start:(i * 10)
      ~finish:((i * 10) + 5)
  done;
  check_int "all recordings counted" 10 (Obs.span_count o);
  check_int "overwritten accounted" 6 (Obs.dropped_spans o);
  let spans = Obs.spans o in
  check_int "capacity retained" 4 (List.length spans);
  (match spans with
  | first :: _ -> check_int "oldest survivor is s6" 60 first.Obs.start
  | [] -> Alcotest.fail "no spans retained");
  let starts = List.map (fun s -> s.Obs.start) spans in
  check_bool "oldest first" true (starts = List.sort compare starts)

let test_nested_span_balance () =
  let o = Obs.create ~enabled:true () in
  let outer = Obs.span_begin o ~cat:"k" ~name:"outer" ~rank:1 ~core:2 ~now:100 in
  let inner = Obs.span_begin o ~cat:"k" ~name:"inner" ~rank:1 ~core:2 ~now:110 in
  check_int "two open" 2 (Obs.open_count o);
  Obs.span_end o inner ~now:120;
  Obs.span_end o outer ~now:150;
  check_int "balanced" 0 (Obs.open_count o);
  (match Obs.spans o with
  | [ a; b ] ->
    Alcotest.(check string) "outer first (by start)" "outer" a.Obs.name;
    check_int "outer at depth 0" 0 a.Obs.depth;
    check_int "inner at depth 1" 1 b.Obs.depth;
    check_int "inner finish kept" 120 b.Obs.finish
  | l -> Alcotest.fail (Printf.sprintf "expected 2 spans, got %d" (List.length l)));
  (* ending an already-ended handle must be a no-op *)
  Obs.span_end o inner ~now:999;
  check_int "double end ignored" 2 (Obs.span_count o)

let test_disabled_is_noop () =
  let o = Obs.create () in
  let h = Obs.span_begin o ~cat:"x" ~name:"n" ~rank:0 ~core:0 ~now:1 in
  check_bool "null handle" true (h = Obs.null_handle);
  Obs.span_end o h ~now:2;
  Obs.incr o ~subsystem:"x" ~name:"c" ();
  Obs.observe_cycles o ~subsystem:"x" ~name:"t" 5;
  check_int "no spans" 0 (Obs.span_count o);
  check_int "no metrics" 0 (List.length (Obs.snapshot o));
  check_bool "digest untouched" true (Fnv.equal (Obs.digest o) Fnv.empty)

(* ------------------------------------------------------------------ *)
(* Metrics *)

let test_timer_single_sample () =
  let o = Obs.create ~enabled:true () in
  Obs.observe_cycles o ~subsystem:"s" ~name:"lat" 42;
  match Obs.timer_stats o ~subsystem:"s" ~name:"lat" () with
  | None -> Alcotest.fail "timer missing"
  | Some st ->
    check_int "one sample" 1 (Stats.Online.n st);
    Alcotest.(check (float 1e-9)) "mean=min=max" 42.0 (Stats.Online.mean st);
    Alcotest.(check (float 1e-9)) "min" 42.0 (Stats.Online.min st);
    Alcotest.(check (float 1e-9)) "max" 42.0 (Stats.Online.max st)

let test_timer_histogram_clamps () =
  let o = Obs.create ~enabled:true () in
  let feed = Obs.observe_cycles o ~hi:100.0 ~bins:10 ~subsystem:"s" ~name:"lat" in
  feed 0;
  (* below range and far above range must clamp into the edge bins *)
  feed 1_000_000;
  feed 99;
  match Obs.timer_histogram o ~subsystem:"s" ~name:"lat" () with
  | None -> Alcotest.fail "histogram missing"
  | Some h ->
    let counts = Stats.Histogram.counts h in
    check_int "all samples binned" 3 (Stats.Histogram.total h);
    check_int "first bin" 1 counts.(0);
    check_int "last bin holds clamp + 99" 2 counts.(Array.length counts - 1)

let test_counters_and_snapshot_order () =
  let o = Obs.create ~enabled:true () in
  Obs.incr o ~rank:1 ~core:0 ~subsystem:"syscall" ~name:"write" ();
  Obs.incr o ~rank:0 ~core:0 ~subsystem:"syscall" ~name:"write" ~by:3 ();
  Obs.incr o ~rank:0 ~core:0 ~subsystem:"syscall" ~name:"write" ();
  Obs.set_gauge o ~rank:0 ~subsystem:"tlb" ~name:"entries" 64;
  check_int "per-scope" 4 (Obs.counter_value o ~rank:0 ~core:0 ~subsystem:"syscall" ~name:"write" ());
  check_int "summed over scopes" 5 (Obs.counter_total o ~subsystem:"syscall" ~name:"write");
  let keys = List.map (fun m -> m.Obs.key) (Obs.snapshot o) in
  check_bool "snapshot deterministically sorted" true
    (keys = List.sort compare keys)

(* ------------------------------------------------------------------ *)
(* Determinism: the acceptance criterion of the whole layer *)

(* With collection on, the whole observability stack is live: spans and
   metrics, the cycle-accounting ledger, and the UPC counter unit. None
   of them may perturb the architectural trace. *)
let fwq_run ~obs_on =
  let cluster = Cnk.Cluster.create ~dims:(1, 1, 1) ~seed:3L () in
  let machine = Cnk.Cluster.machine cluster in
  if obs_on then begin
    Obs.set_enabled (Machine.obs machine) true;
    Accounting.set_enabled (Machine.acct machine) true;
    Bg_hw.Upc.start (Bg_hw.Chip.upc (Machine.chip machine 0))
  end;
  Cnk.Cluster.boot_all cluster;
  let entry, _ = Bg_apps.Fwq.program ~samples:150 ~threads:4 () in
  Cnk.Cluster.run_job cluster
    (Job.create ~name:"fwq" (Image.executable ~name:"fwq" entry));
  (Trace.digest (Sim.trace (Cnk.Cluster.sim cluster)), machine)

let test_sim_digest_unperturbed () =
  let off, _ = fwq_run ~obs_on:false in
  let on_, machine = fwq_run ~obs_on:true in
  check_bool "sim trace digest identical with obs+acct+UPC on vs off" true
    (Fnv.equal off on_);
  check_bool "and the run actually collected something" true
    (Obs.span_count (Machine.obs machine) > 0)

let test_obs_digest_reproducible () =
  let _, a = fwq_run ~obs_on:true in
  let _, b = fwq_run ~obs_on:true in
  let a = Machine.obs a and b = Machine.obs b in
  Alcotest.(check string) "span digest reproducible"
    (Fnv.to_hex (Obs.digest a))
    (Fnv.to_hex (Obs.digest b));
  check_bool "digest covers spans" false (Fnv.equal (Obs.digest a) Fnv.empty)

(* ------------------------------------------------------------------ *)
(* Exporters *)

let test_chrome_trace_valid_json () =
  let _, machine = fwq_run ~obs_on:true in
  let obs = Machine.obs machine in
  let json = Export.chrome_trace obs in
  (match Export.validate_json json with
  | Ok () -> ()
  | Error e -> Alcotest.fail ("emitted invalid JSON: " ^ e));
  let cats = List.sort_uniq compare (List.map (fun s -> s.Obs.cat) (Obs.spans obs)) in
  List.iter
    (fun c -> check_bool ("category " ^ c) true (List.mem c cats))
    [ "syscall"; "cio"; "tlb" ]

let test_json_validator_rejects () =
  check_bool "garbage" true (Result.is_error (Export.validate_json "{"));
  check_bool "trailing" true (Result.is_error (Export.validate_json "{} x"));
  check_bool "bare word" true (Result.is_error (Export.validate_json "nope"));
  check_bool "unterminated string" true
    (Result.is_error (Export.validate_json "{\"a\": \"b}"));
  check_bool "valid nested" true
    (Result.is_ok (Export.validate_json "{\"a\":[1,2.5e3,true,null,\"s\\n\"]}"))

let test_csv_exports () =
  let _, machine = fwq_run ~obs_on:true in
  let obs = Machine.obs machine in
  let metrics = Export.metrics_csv obs in
  let spans = Export.spans_csv obs in
  check_bool "metrics header" true
    (String.length metrics > 0
    && String.sub metrics 0 9 = "subsystem");
  check_bool "spans header" true
    (String.length spans > 0 && String.sub spans 0 3 = "cat");
  check_int "one line per span + header"
    (List.length (Obs.spans obs) + 1)
    (List.length (String.split_on_char '\n' (String.trim spans)))

(* ------------------------------------------------------------------ *)
(* Histogram percentiles *)

let test_histogram_percentiles () =
  let h = Stats.Histogram.create ~lo:0.0 ~hi:100.0 ~bins:100 in
  Alcotest.(check (float 1e-9)) "empty percentile" 0.0 (Stats.Histogram.percentile h 0.5);
  for i = 1 to 100 do
    Stats.Histogram.add h (float_of_int i -. 0.5)
  done;
  Alcotest.(check (float 1e-6)) "sum of raw samples" 5000.0 (Stats.Histogram.sum h);
  Alcotest.(check (float 1e-6)) "p50" 50.0 (Stats.Histogram.percentile h 0.50);
  Alcotest.(check (float 1e-6)) "p90" 90.0 (Stats.Histogram.percentile h 0.90);
  Alcotest.(check (float 1e-6)) "p99" 99.0 (Stats.Histogram.percentile h 0.99);
  Alcotest.(check (float 1e-6)) "p999" 99.9 (Stats.Histogram.percentile h 0.999);
  check_bool "clamped p" true
    (Stats.Histogram.percentile h (-1.0) <= Stats.Histogram.percentile h 2.0)

let test_timer_snapshot_percentiles () =
  let o = Obs.create ~enabled:true () in
  let feed = Obs.observe_cycles o ~hi:1000.0 ~bins:100 ~subsystem:"s" ~name:"lat" in
  for i = 1 to 100 do
    feed ((i * 10) - 5)
  done;
  match
    List.filter (fun m -> match m.Obs.value with Obs.Timer _ -> true | _ -> false)
      (Obs.snapshot o)
  with
  | [ { Obs.value = Obs.Timer t; _ } ] ->
    check_int "n" 100 t.n;
    Alcotest.(check (float 1e-6)) "sum" 50_000.0 t.sum;
    check_bool "percentiles ordered" true
      (t.p50 <= t.p90 && t.p90 <= t.p99 && t.p99 <= t.p999);
    check_bool "p50 plausible" true (t.p50 > 400.0 && t.p50 < 600.0);
    check_bool "p999 near max" true (t.p999 > 900.0)
  | _ -> Alcotest.fail "expected exactly one timer in snapshot"

(* ------------------------------------------------------------------ *)
(* Span ordering tie-break *)

let test_span_order_tie_break () =
  let o = Obs.create ~enabled:true () in
  (* same start cycle everywhere; recorded deliberately out of order *)
  Obs.span_record o ~cat:"t" ~name:"r2" ~rank:2 ~core:0 ~start:100 ~finish:110;
  Obs.span_record o ~cat:"t" ~name:"r0c1_a" ~rank:0 ~core:1 ~start:100 ~finish:120;
  Obs.span_record o ~cat:"t" ~name:"r0c0" ~rank:0 ~core:0 ~start:100 ~finish:130;
  Obs.span_record o ~cat:"t" ~name:"r0c1_b" ~rank:0 ~core:1 ~start:100 ~finish:140;
  let names = List.map (fun (s : Obs.span) -> s.Obs.name) (Obs.spans o) in
  Alcotest.(check (list string))
    "equal starts sort by rank, then core, then completion order"
    [ "r0c0"; "r0c1_a"; "r0c1_b"; "r2" ] names

(* ------------------------------------------------------------------ *)
(* UPC counter unit *)

let test_upc_freeze_semantics () =
  let u = Upc.create ~cores:2 () in
  Upc.record u ~core:0 Upc.Tlb_miss 5;
  check_int "stopped unit ignores records" 0 (Upc.read u ~core:0 Upc.Tlb_miss);
  Upc.start u;
  Upc.record u ~core:0 Upc.Tlb_miss 5;
  Upc.record u Upc.Torus_packet 2;
  check_int "live read" 5 (Upc.read u ~core:0 Upc.Tlb_miss);
  check_bool "no snapshot before freeze" true (Upc.frozen_snapshot u = None);
  Upc.freeze u;
  Upc.record u ~core:0 Upc.Tlb_miss 3;
  check_int "live keeps counting" 8 (Upc.read u ~core:0 Upc.Tlb_miss);
  (match Upc.frozen_snapshot u with
  | None -> Alcotest.fail "freeze lost"
  | Some rs ->
    let miss =
      List.find (fun r -> r.Upc.event = Upc.Tlb_miss && r.Upc.core = 0) rs
    in
    check_int "frozen value latched" 5 miss.Upc.count);
  Upc.reset u;
  check_bool "reset stops and clears" true
    ((not (Upc.running u)) && Upc.snapshot u = [] && Upc.frozen_snapshot u = None)

let test_upc_deterministic_across_runs () =
  let digests () =
    let _, machine = fwq_run ~obs_on:true in
    ( Fnv.to_hex (Upc.digest (Bg_hw.Chip.upc (Machine.chip machine 0))),
      Fnv.to_hex (Accounting.digest (Machine.acct machine)) )
  in
  let upc_a, acct_a = digests () in
  let upc_b, acct_b = digests () in
  Alcotest.(check string) "UPC digest identical across seeded runs" upc_a upc_b;
  Alcotest.(check string) "ledger digest identical across seeded runs" acct_a acct_b

(* ------------------------------------------------------------------ *)
(* Cycle accounting: conservation *)

let test_accounting_unit_conservation () =
  let a = Accounting.create ~enabled:true () in
  Accounting.switch a ~rank:0 ~core:0 ~now:100 Accounting.App;
  Accounting.switch a ~rank:0 ~core:0 ~now:600 Accounting.Syscall;
  Accounting.switch a ~rank:0 ~core:0 ~now:700 Accounting.App;
  Accounting.attribute a ~rank:0 ~core:0 ~now:1700
    [ (Accounting.Daemon, 200); (Accounting.Interrupt, 50) ];
  (match Accounting.entries a with
  | [ e ] ->
    check_int "app" (500 + 750) (Accounting.cycles e Accounting.App);
    check_int "syscall" 100 (Accounting.cycles e Accounting.Syscall);
    check_int "daemon" 200 (Accounting.cycles e Accounting.Daemon);
    check_int "interrupt" 50 (Accounting.cycles e Accounting.Interrupt);
    check_bool "conserved" true (Accounting.conserved_entry e)
  | l -> Alcotest.fail (Printf.sprintf "expected 1 entry, got %d" (List.length l)));
  check_bool "over-attribution rejected" true
    (try
       Accounting.attribute a ~rank:0 ~core:0 ~now:1701 [ (Accounting.Daemon, 999) ];
       false
     with Invalid_argument _ -> true)

let test_accounting_conserved_cnk () =
  let _, machine = fwq_run ~obs_on:true in
  let acct = Machine.acct machine in
  check_bool "conservation on every CNK core" true (Accounting.conserved acct);
  let entries = Accounting.entries acct in
  check_bool "all four cores touched" true (List.length entries >= 4);
  let totals = Accounting.totals entries in
  check_bool "app cycles dominate" true
    (List.assoc Accounting.App totals > List.assoc Accounting.Syscall totals);
  check_bool "syscall cycles present" true (List.assoc Accounting.Syscall totals > 0)

let test_accounting_conserved_fwk () =
  let machine = Machine.create ~dims:(1, 1, 1) () in
  Accounting.set_enabled (Machine.acct machine) true;
  let node = Bg_fwk.Node.create ~noise_seed:5L machine ~rank:0 ~stripped:true () in
  let entry, _ = Bg_apps.Fwq.program ~samples:400 ~threads:4 () in
  let finished = ref false in
  Bg_fwk.Node.boot node ~on_ready:(fun () ->
      Bg_fwk.Node.on_job_complete node (fun () -> finished := true);
      match
        Bg_fwk.Node.launch node (Job.create ~name:"fwq" (Image.executable ~name:"fwq" entry))
      with
      | Ok () -> ()
      | Error e -> failwith e);
  ignore (Sim.run (Machine.sim machine));
  check_bool "fwk job finished" true !finished;
  let acct = Machine.acct machine in
  check_bool "conservation on every FWK core" true (Accounting.conserved acct);
  let totals = Accounting.totals (Accounting.entries acct) in
  check_bool "timer ticks attributed" true (List.assoc Accounting.Interrupt totals > 0);
  check_bool "daemon steals attributed" true (List.assoc Accounting.Daemon totals > 0)

(* ------------------------------------------------------------------ *)
(* Flamegraph export *)

let test_collapsed_stacks_golden () =
  let o = Obs.create ~enabled:true () in
  let outer = Obs.span_begin o ~cat:"job" ~name:"outer" ~rank:0 ~core:0 ~now:0 in
  let inner = Obs.span_begin o ~cat:"job" ~name:"inner" ~rank:0 ~core:0 ~now:10 in
  Obs.span_end o inner ~now:40;
  Obs.span_end o outer ~now:100;
  Obs.span_record o ~cat:"tick" ~name:"t0" ~rank:1 ~core:2 ~start:5 ~finish:9;
  Alcotest.(check string) "golden collapsed-stack output"
    "rank0/core0;job:outer 70\n\
     rank0/core0;job:outer;job:inner 30\n\
     rank1/core2;tick:t0 4\n"
    (Export.collapsed_stacks o)

let test_collapsed_stacks_from_run () =
  let _, machine = fwq_run ~obs_on:true in
  let folded = Export.collapsed_stacks (Machine.obs machine) in
  check_bool "non-empty" true (String.length folded > 0);
  List.iter
    (fun line ->
      if String.trim line <> "" then
        match String.rindex_opt line ' ' with
        | None -> Alcotest.fail ("malformed folded line: " ^ line)
        | Some i ->
          let w = int_of_string (String.sub line (i + 1) (String.length line - i - 1)) in
          check_bool "non-negative weight" true (w >= 0))
    (String.split_on_char '\n' folded)

let test_chrome_trace_counter_events () =
  let o = Obs.create ~enabled:true () in
  Obs.incr o ~rank:0 ~core:1 ~subsystem:"syscall" ~name:"write" ~by:7 ();
  Obs.set_gauge o ~rank:0 ~subsystem:"tlb" ~name:"entries" 64;
  let json = Export.chrome_trace o in
  (match Export.validate_json json with
  | Ok () -> ()
  | Error e -> Alcotest.fail ("counter events broke the JSON: " ^ e));
  let contains s sub =
    let n = String.length s and m = String.length sub in
    let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
    go 0
  in
  check_bool "has ph:C rows" true (contains json "\"ph\":\"C\"")

let test_dropped_spans_counter_row () =
  (* Span loss from ring wraparound must be visible in the trace viewer:
     the per-scope obs.dropped_spans counter gets its own ph:"C" row. *)
  let o = Obs.create ~ring_capacity:4 ~enabled:true () in
  for i = 0 to 9 do
    Obs.span_record o ~cat:"t" ~name:"s" ~rank:2 ~core:1 ~start:(i * 10)
      ~finish:((i * 10) + 5)
  done;
  check_int "six spans overwritten" 6 (Obs.dropped_spans o);
  check_int "mirrored as a counter" 6
    (Obs.counter_value o ~rank:2 ~core:1 ~subsystem:"obs" ~name:"dropped_spans" ());
  let json = Export.chrome_trace o in
  (match Export.validate_json json with
  | Ok () -> ()
  | Error e -> Alcotest.fail ("trace broke the JSON: " ^ e));
  let contains s sub =
    let n = String.length s and m = String.length sub in
    let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
    go 0
  in
  check_bool "dropped_spans has a counter row" true
    (contains json "\"name\":\"obs.dropped_spans[c1]\",\"ph\":\"C\"")

let test_reset_clears_state () =
  (* Obs.reset must drop everything: retained and dropped spans, open
     handles, depth state, metrics and the digest — so a reused
     collector can't leak one run's loss accounting into the next. *)
  let o = Obs.create ~ring_capacity:4 ~enabled:true () in
  for i = 0 to 9 do
    Obs.span_record o ~cat:"t" ~name:"s" ~rank:0 ~core:0 ~start:i ~finish:(i + 1)
  done;
  let open_h = Obs.span_begin o ~cat:"t" ~name:"open" ~rank:0 ~core:0 ~now:99 in
  Obs.incr o ~subsystem:"x" ~name:"c" ();
  check_bool "precondition: losses recorded" true (Obs.dropped_spans o > 0);
  check_int "precondition: one open span" 1 (Obs.open_count o);
  Obs.reset o;
  check_int "dropped_spans cleared" 0 (Obs.dropped_spans o);
  check_int "dropped_spans counter cleared" 0
    (Obs.counter_value o ~subsystem:"obs" ~name:"dropped_spans" ());
  check_int "open spans cleared" 0 (Obs.open_count o);
  check_int "span count cleared" 0 (Obs.span_count o);
  check_int "metrics cleared" 0 (List.length (Obs.snapshot o));
  check_bool "digest cleared" true (Fnv.equal (Obs.digest o) Fnv.empty);
  (* a stale handle from before the reset must be ignored, not revive *)
  Obs.span_end o open_h ~now:120;
  check_int "stale handle ignored" 0 (Obs.span_count o)

(* ------------------------------------------------------------------ *)
(* Query_perf syscall, on both kernels *)

let perf_program () =
  let ok = ref false in
  let body () =
    (match Coro.syscall (Sysreq.Query_perf Sysreq.Perf_start) with
    | Sysreq.R_unit -> ()
    | _ -> failwith "perf_start failed");
    let a = Rt.Malloc.malloc 4096 in
    Rt.Libc.poke a 1;
    ignore (Rt.Libc.peek a);
    (match Coro.syscall (Sysreq.Query_perf Sysreq.Perf_freeze) with
    | Sysreq.R_unit -> ()
    | _ -> failwith "perf_freeze failed");
    (* post-freeze activity must not move the latched snapshot *)
    Rt.Libc.poke a 2;
    ignore (Rt.Libc.peek a);
    let first = Sysreq.expect_perf (Coro.syscall (Sysreq.Query_perf Sysreq.Perf_read)) in
    Rt.Libc.poke a 3;
    let second = Sysreq.expect_perf (Coro.syscall (Sysreq.Query_perf Sysreq.Perf_read)) in
    if first = [] then failwith "empty perf reading";
    if first <> second then failwith "frozen snapshot drifted";
    ok := true
  in
  (body, ok)

let test_perf_syscall_cnk () =
  let body, ok = perf_program () in
  let cluster = Cnk.Cluster.create ~dims:(1, 1, 1) () in
  Cnk.Cluster.boot_all cluster;
  Cnk.Cluster.run_job cluster
    (Job.create ~name:"perf" (Image.executable ~name:"perf" (fun () -> body ())));
  Alcotest.(check (list (pair int string))) "no faults" []
    (Cnk.Node.faults (Cnk.Cluster.node cluster 0));
  check_bool "CNK program read frozen UPC counters" true !ok

let test_perf_syscall_fwk () =
  let body, ok = perf_program () in
  let machine = Machine.create ~dims:(1, 1, 1) () in
  let node = Bg_fwk.Node.create ~noise_seed:9L machine ~rank:0 ~stripped:true () in
  let finished = ref false in
  Bg_fwk.Node.boot node ~on_ready:(fun () ->
      Bg_fwk.Node.on_job_complete node (fun () -> finished := true);
      match
        Bg_fwk.Node.launch node
          (Job.create ~name:"perf" (Image.executable ~name:"perf" (fun () -> body ())))
      with
      | Ok () -> ()
      | Error e -> failwith e);
  ignore (Sim.run (Machine.sim machine));
  check_bool "fwk job finished" true !finished;
  Alcotest.(check (list (pair int string))) "no faults" [] (Bg_fwk.Node.faults node);
  check_bool "FWK program read frozen UPC counters" true !ok

let suite =
  [
    Alcotest.test_case "span ring: wraparound" `Quick test_ring_wraparound;
    Alcotest.test_case "spans: nested balance" `Quick test_nested_span_balance;
    Alcotest.test_case "disabled collector is a no-op" `Quick test_disabled_is_noop;
    Alcotest.test_case "timer: single sample" `Quick test_timer_single_sample;
    Alcotest.test_case "timer histogram: clamping" `Quick test_timer_histogram_clamps;
    Alcotest.test_case "counters + snapshot order" `Quick test_counters_and_snapshot_order;
    Alcotest.test_case "sim digest unperturbed by obs" `Quick test_sim_digest_unperturbed;
    Alcotest.test_case "obs digest reproducible" `Quick test_obs_digest_reproducible;
    Alcotest.test_case "chrome trace is valid JSON" `Quick test_chrome_trace_valid_json;
    Alcotest.test_case "json validator rejects junk" `Quick test_json_validator_rejects;
    Alcotest.test_case "csv exports" `Quick test_csv_exports;
    Alcotest.test_case "histogram: exact percentiles + sum" `Quick test_histogram_percentiles;
    Alcotest.test_case "timer snapshot surfaces percentiles" `Quick test_timer_snapshot_percentiles;
    Alcotest.test_case "span order: equal-start tie-break" `Quick test_span_order_tie_break;
    Alcotest.test_case "upc: freeze/read semantics" `Quick test_upc_freeze_semantics;
    Alcotest.test_case "upc + ledger digests deterministic" `Quick test_upc_deterministic_across_runs;
    Alcotest.test_case "accounting: unit conservation" `Quick test_accounting_unit_conservation;
    Alcotest.test_case "accounting: conserved on CNK" `Quick test_accounting_conserved_cnk;
    Alcotest.test_case "accounting: conserved on FWK" `Quick test_accounting_conserved_fwk;
    Alcotest.test_case "collapsed stacks: golden output" `Quick test_collapsed_stacks_golden;
    Alcotest.test_case "collapsed stacks: well-formed from run" `Quick test_collapsed_stacks_from_run;
    Alcotest.test_case "chrome trace: counter events" `Quick test_chrome_trace_counter_events;
    Alcotest.test_case "chrome trace: dropped_spans counter row" `Quick
      test_dropped_spans_counter_row;
    Alcotest.test_case "reset clears spans, losses, metrics" `Quick
      test_reset_clears_state;
    Alcotest.test_case "query_perf syscall on CNK" `Quick test_perf_syscall_cnk;
    Alcotest.test_case "query_perf syscall on FWK" `Quick test_perf_syscall_fwk;
  ]
