(* Tests for the snapshot subsystem: container codec round-trip and
   corruption behavior (typed errors, never a raise), the shared sparse
   delta codec's bit-compatibility with the pre-existing Ckpt wire
   format, capture determinism, the restore-continuation invariant on
   both kernels, and divergence bisection landing on the seeded glitch. *)

module Snap = Bg_snap.Snap
module Snaprun = Bg_snaprun.Snaprun

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let sample_file () =
  {
    Snap.format_version = Snap.format_version;
    scenario = "test";
    knobs = [ ("glitch", "1"); ("iters", "7") ];
    seed = 42L;
    events = 12345;
    clock = 987654321;
    regions =
      [
        { Snap.layer = "engine.sim"; layer_version = 1; payload = Bytes.of_string "abcd" };
        { Snap.layer = "hw.chips"; layer_version = 1; payload = Bytes.create 0 };
        {
          Snap.layer = "cnk.nodes";
          layer_version = 3;
          payload = Bytes.init 257 (fun i -> Char.chr (i land 0xff));
        };
      ];
  }

let test_container_round_trip () =
  let f = sample_file () in
  match Snap.decode (Snap.encode f) with
  | Ok f' ->
    check_bool "round-trips" true (f = f');
    check_bool "equal" true (Snap.equal f f');
    check_bool "find_region" true (Snap.find_region f' "cnk.nodes" <> None);
    check_bool "missing region" true (Snap.find_region f' "nope" = None)
  | Error e -> Alcotest.fail (Snap.decode_error_to_string e)

(* Every truncation and every single-byte corruption must come back as a
   typed error — the CRC covers the whole body, the magic and version
   guard the header — and must never raise. *)
let test_decode_never_raises () =
  let b = Snap.encode (sample_file ()) in
  let n = Bytes.length b in
  for len = 0 to n - 1 do
    match Snap.decode (Bytes.sub b 0 len) with
    | Ok _ -> Alcotest.failf "truncation to %d decoded" len
    | Error _ -> ()
  done;
  for i = 0 to n - 1 do
    let c = Bytes.copy b in
    Bytes.set c i (Char.chr (Char.code (Bytes.get c i) lxor 0x40));
    match Snap.decode c with
    | Ok _ -> Alcotest.failf "corruption at byte %d went undetected" i
    | Error _ -> ()
  done

let test_decode_trailing_garbage () =
  let b = Snap.encode (sample_file ()) in
  let c = Bytes.cat b (Bytes.of_string "zz") in
  check_bool "trailing bytes rejected" true (Snap.decode c <> Ok (sample_file ()))

(* The sparse codec must produce byte-for-byte the delta format Ckpt has
   always written: [count][addr len]... header then raw range data. *)
let test_sparse_golden_bytes () =
  let ranges = [ (4096, 16); (8192, 8) ] in
  let read ~addr ~len = Bytes.init len (fun i -> Char.chr ((addr + i) land 0xff)) in
  (* hand-built, exactly as lib/resilience/ckpt.ml wrote it before *)
  let count = List.length ranges in
  let head = Bytes.create (8 * (1 + (2 * count))) in
  Bytes.set_int64_le head 0 (Int64.of_int count);
  List.iteri
    (fun i (a, l) ->
      Bytes.set_int64_le head (8 * (1 + (2 * i))) (Int64.of_int a);
      Bytes.set_int64_le head (8 * (2 + (2 * i))) (Int64.of_int l))
    ranges;
  let golden =
    Bytes.concat Bytes.empty
      (head :: List.map (fun (a, l) -> read ~addr:a ~len:l) ranges)
  in
  Alcotest.(check string)
    "header matches"
    (Bytes.to_string head)
    (Bytes.to_string (Snap.Sparse.encode_header ranges));
  let enc = Snap.Sparse.encode ~ranges ~read in
  Alcotest.(check string) "full delta matches" (Bytes.to_string golden)
    (Bytes.to_string enc);
  (match Snap.Sparse.decode enc with
  | Ok got ->
    check_bool "decode round-trips" true
      (got = List.map (fun (a, l) -> (a, read ~addr:a ~len:l)) ranges)
  | Error e -> Alcotest.fail (Snap.decode_error_to_string e));
  (* truncated data is a typed error, never a raise *)
  for len = 0 to Bytes.length enc - 1 do
    match Snap.Sparse.decode (Bytes.sub enc 0 len) with
    | Ok got ->
      (* a prefix can only legitimately decode as the empty delta *)
      check_bool "short prefix decodes only as empty" true (got = [] && len >= 8)
    | Error _ -> ()
  done

let scn name =
  match Snaprun.find name with
  | Some s -> s
  | None -> Alcotest.failf "scenario %s missing" name

(* Capturing twice without stepping must produce identical bytes —
   capture has no side effects and hash iteration is sorted away. *)
let test_capture_idempotent () =
  let s = scn "cnk_io" in
  let inst, a, _ = Snaprun.snapshot_at s ~seed:3L ~knobs:[] ~events:40 in
  let b = Snaprun.snapshot_of s inst ~knobs:[] in
  check_bool "captures byte-identical" true
    (Snap.encode a = Snap.encode b);
  check_bool "diff empty" true (Snap.diff a b = None)

(* The tentpole invariant: snapshot at event N, restore (replay +
   byte-verify), continue to completion — the digests must equal the
   uninterrupted run's. *)
let restore_invariant name ~knobs =
  let s = scn name in
  let ref_inst = s.Snaprun.build ~seed:7L ~knobs in
  let final = Snaprun.run_until_quiet ref_inst in
  let want = Snaprun.digests ref_inst in
  let cursor = final / 2 in
  let _, file, outcome = Snaprun.snapshot_at s ~seed:7L ~knobs ~events:cursor in
  check_bool "reached cursor" true (outcome = `Reached);
  let file =
    match Snap.decode (Snap.encode file) with
    | Ok f -> f
    | Error e -> Alcotest.fail (Snap.decode_error_to_string e)
  in
  match Snaprun.restore s file with
  | Error e -> Alcotest.fail e
  | Ok inst ->
    check_int "restored at cursor" cursor
      (Bg_engine.Sim.events_fired inst.Snaprun.machine.Bg_kabi.Machine.sim);
    ignore (Snaprun.run_until_quiet inst);
    check_bool "continuation digests equal" true (Snaprun.digests inst = want)

let test_restore_invariant_cnk () =
  restore_invariant "cnk_io" ~knobs:[ ("iters", "8") ]

let test_restore_invariant_fwk () =
  restore_invariant "fwk_noise" ~knobs:[ ("quanta", "10") ]

(* Replaying a snapshot under the wrong knobs must fail verification
   with a typed mismatch naming the diverging region. *)
let test_restore_detects_wrong_knobs () =
  let s = scn "fwk_noise" in
  let _, file, outcome =
    Snaprun.snapshot_at s ~seed:7L ~knobs:[ ("glitch", "1") ] ~events:12
  in
  check_bool "reached cursor" true (outcome = `Reached);
  let forged = { file with Snap.knobs = [ ("glitch", "0") ] } in
  match Snaprun.restore s forged with
  | Ok _ -> Alcotest.fail "restore accepted a forged knob set"
  | Error msg ->
    check_bool "mismatch names a region" true
      (String.length msg > 0
      &&
      let rec has_sub i =
        i + 8 <= String.length msg && (String.sub msg i 8 = "diverges" || has_sub (i + 1))
      in
      has_sub 0)

let test_machine_restore_cursor_errors () =
  let s = scn "fwk_noise" in
  let inst, file, _ = Snaprun.snapshot_at s ~seed:7L ~knobs:[] ~events:10 in
  (* already past the cursor *)
  ignore (Snaprun.run_to inst ~events:12);
  (match Bg_kabi.Machine.restore inst.Snaprun.machine ~extra:inst.Snaprun.extra file with
  | Error (Bg_kabi.Machine.Cursor_passed _) -> ()
  | _ -> Alcotest.fail "expected Cursor_passed");
  (* cursor beyond the queue drain *)
  let fresh = s.Snaprun.build ~seed:7L ~knobs:[] in
  let beyond = { file with Snap.events = 1_000_000 } in
  match Bg_kabi.Machine.restore fresh.Snaprun.machine ~extra:fresh.Snaprun.extra beyond with
  | Error (Bg_kabi.Machine.Queue_drained _) -> ()
  | _ -> Alcotest.fail "expected Queue_drained"

(* Bisection must land exactly on the glitch event and stay within the
   O(log) probe budget. *)
let test_bisect_lands_on_glitch () =
  let s = scn "fwk_noise" in
  match
    Snaprun.bisect s ~seed:1L ~knobs_a:[ ("glitch", "0") ] ~knobs_b:[ ("glitch", "1") ]
      ~start:4 ()
  with
  | Error e -> Alcotest.fail e
  | Ok d ->
    (* the divergent capture carries the glitch span on the b side only *)
    (match d.Snaprun.div_span with
    | Some ("b", sp) ->
      Alcotest.(check string) "span cat" "snap" sp.Bg_obs.Obs.cat;
      Alcotest.(check string) "span name" "glitch" sp.Bg_obs.Obs.name
    | _ -> Alcotest.fail "offending span is not the glitch");
    check_bool "O(log) probes" true (d.Snaprun.div_probes <= 16);
    (* the event just before the answer is capture-identical *)
    let cap knobs events =
      let inst = s.Snaprun.build ~seed:1L ~knobs in
      ignore (Snaprun.run_to inst ~events);
      Snaprun.snapshot_of s inst ~knobs
    in
    let before = d.Snaprun.div_event - 1 in
    check_bool "equal just before divergence" true
      (Snap.diff (cap [ ("glitch", "0") ] before) (cap [ ("glitch", "1") ] before) = None);
    check_bool "divergent at the answer" true
      (Snap.diff
         (cap [ ("glitch", "0") ] d.Snaprun.div_event)
         (cap [ ("glitch", "1") ] d.Snaprun.div_event)
      <> None)

let suite =
  [
    Alcotest.test_case "container round-trip" `Quick test_container_round_trip;
    Alcotest.test_case "decode never raises: truncations and bit flips" `Quick
      test_decode_never_raises;
    Alcotest.test_case "decode rejects trailing garbage" `Quick
      test_decode_trailing_garbage;
    Alcotest.test_case "sparse delta: golden bytes vs legacy Ckpt format" `Quick
      test_sparse_golden_bytes;
    Alcotest.test_case "capture is idempotent and deterministic" `Quick
      test_capture_idempotent;
    Alcotest.test_case "restore continuation invariant (CNK)" `Quick
      test_restore_invariant_cnk;
    Alcotest.test_case "restore continuation invariant (FWK)" `Quick
      test_restore_invariant_fwk;
    Alcotest.test_case "restore rejects forged knobs with region mismatch" `Quick
      test_restore_detects_wrong_knobs;
    Alcotest.test_case "Machine.restore cursor errors are typed" `Quick
      test_machine_restore_cursor_errors;
    Alcotest.test_case "bisect lands on the seeded glitch" `Quick
      test_bisect_lands_on_glitch;
  ]
