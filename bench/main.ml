(* The experiment harness: regenerates every table and figure of the
   paper's evaluation, printing paper-reported values next to measured
   ones. Run all experiments:    dune exec bench/main.exe
   Run one:                      dune exec bench/main.exe -- fwq
   List:                         dune exec bench/main.exe -- list *)

open Bg_engine
open Bg_kabi
module Noise = Bg_noise
module Bringup = Bg_bringup

let section title = Printf.printf "\n===== %s =====\n%!" title

(* ------------------------------------------------------------------ *)
(* E1: Figs 5-7 -- FWQ on Linux vs CNK *)

let run_fwq () =
  section "E1 (Figs 5-7): FWQ noise, 12,000 samples of 658,958-cycle quanta";
  let cnk = Noise.Fwq_harness.run_on_cnk ~samples:12_000 () in
  let fwk = Noise.Fwq_harness.run_on_fwk ~samples:12_000 ~noise_seed:42L () in
  (* ASCII rendition of the figures' dot clouds: per-core sample density
     on a log scale over the cycle range *)
  let plot t =
    let h = Noise.Fwq_harness.histogram t ~bins:48 in
    let maxc = List.fold_left (fun a (_, c) -> max a c) 1 h in
    let line =
      String.concat ""
        (List.map
           (fun (_, c) ->
             if c = 0 then " "
             else begin
               let lvl =
                 int_of_float
                   (4.0 *. log (float_of_int (c + 1)) /. log (float_of_int (maxc + 1)))
               in
               [| "."; ":"; "+"; "#"; "@" |].(min 4 lvl)
             end)
           h)
    in
    Printf.printf "    [%s] %d..%d cycles\n" line t.Noise.Fwq_harness.min_cycles
      t.Noise.Fwq_harness.max_cycles
  in
  let print_report label paper r =
    Printf.printf "%s (paper: %s)\n" label paper;
    List.iter
      (fun t ->
        Printf.printf "  core %d: min %7d max %7d (+%6d)  spread %8.4f%%\n"
          t.Noise.Fwq_harness.thread t.Noise.Fwq_harness.min_cycles
          t.Noise.Fwq_harness.max_cycles
          (t.Noise.Fwq_harness.max_cycles - t.Noise.Fwq_harness.min_cycles)
          t.Noise.Fwq_harness.spread_percent;
        plot t)
      r.Noise.Fwq_harness.threads
  in
  print_report "Linux (FWK)"
    "+38,076 / +10,194 / +42,000 / +36,470 cycles; >5% on cores 0,2,3" fwk;
  print_report "CNK" "max variation < 0.006%" cnk;
  Printf.printf "contrast: FWK max spread %.3f%% vs CNK %.5f%%\n"
    (Noise.Fwq_harness.max_spread fwk)
    (Noise.Fwq_harness.max_spread cnk);
  (* Ferreira-style characterization recovered from the measurements *)
  Printf.printf "\ninferred noise signatures (core 0):\n";
  let sig_of r = Noise.Analysis.characterize (List.hd r.Noise.Fwq_harness.threads).Noise.Fwq_harness.samples in
  Format.printf "  FWK: %a" Noise.Analysis.pp (sig_of fwk);
  Format.printf "  CNK: %a" Noise.Analysis.pp (sig_of cnk)

(* ------------------------------------------------------------------ *)
(* E2: Table I -- messaging latencies *)

let run_latency () =
  section "E2 (Table I): one-way latency by protocol, SMP mode, nearest neighbors";
  let lat = Hashtbl.create 8 in
  let record name us = Hashtbl.replace lat name us in
  let cluster = Cnk.Cluster.create ~dims:(2, 1, 1) () in
  Cnk.Cluster.boot_all cluster;
  let fabric = Bg_msg.Dcmf.make_fabric (Cnk.Cluster.machine cluster) in
  for r = 0 to 1 do
    ignore (Bg_msg.Dcmf.attach fabric ~rank:r)
  done;
  let image =
    Image.executable ~name:"latency" (fun () ->
        let r = Bg_rt.Libc.rank () in
        let ctx = Bg_msg.Dcmf.attach fabric ~rank:r in
        if r = 1 then Bg_msg.Dcmf.register ctx ~tag:1 ~bytes:64
        else begin
          let mpi = Bg_msg.Mpi.create ctx in
          let data = Bytes.make 8 'x' in
          Coro.consume 5_000;
          let handle_one name f =
            let t0 = Coro.rdtsc () in
            let h = f () in
            Bg_msg.Dcmf.wait h;
            record name (Cycles.to_us (Bg_msg.Dcmf.completion_cycle h - t0));
            Coro.consume 20_000
          in
          handle_one "DCMF Put" (fun () -> Bg_msg.Dcmf.put ctx ~dst:1 ~tag:1 ~data);
          handle_one "DCMF Get" (fun () -> Bg_msg.Dcmf.get ctx ~src:1 ~tag:1);
          handle_one "DCMF Eager One-way" (fun () ->
              Bg_msg.Dcmf.send_eager ctx ~dst:1 ~tag:9 ~data);
          (let t0 = Coro.rdtsc () in
           Bg_msg.Armci.blocking_put ctx ~dst:1 ~tag:1 ~data;
           record "ARMCI blocking Put" (Cycles.to_us (Coro.rdtsc () - t0)));
          Coro.consume 20_000;
          (let t0 = Coro.rdtsc () in
           ignore (Bg_msg.Armci.blocking_get ctx ~src:1 ~tag:1);
           record "ARMCI blocking Get" (Cycles.to_us (Coro.rdtsc () - t0)));
          Coro.consume 20_000;
          (let t0 = Coro.rdtsc () in
           Coro.consume Bg_msg.Msg_params.mpi_send_overhead;
           let h = Bg_msg.Dcmf.send_eager ctx ~dst:1 ~tag:11 ~data in
           Bg_msg.Dcmf.wait h;
           record "MPI Eager One-way"
             (Cycles.to_us
                (Bg_msg.Dcmf.completion_cycle h - t0 + Bg_msg.Msg_params.mpi_match_overhead)));
          Coro.consume 20_000;
          let t0 = Coro.rdtsc () in
          Bg_msg.Mpi.send_rendezvous mpi ~dst:1 ~tag:3 8;
          record "MPI Rendezvous One-way" (Cycles.to_us (Coro.rdtsc () - t0))
        end)
  in
  Cnk.Cluster.run_job cluster (Job.create ~name:"lat" image);
  let paper =
    [
      ("DCMF Eager One-way", 1.6);
      ("MPI Eager One-way", 2.4);
      ("MPI Rendezvous One-way", 5.6);
      ("DCMF Put", 0.9);
      ("DCMF Get", 1.6);
      ("ARMCI blocking Put", 2.0);
      ("ARMCI blocking Get", 3.3);
    ]
  in
  Printf.printf "%-24s %10s %10s\n" "Protocol" "paper(us)" "measured";
  List.iter
    (fun (name, p) ->
      match Hashtbl.find_opt lat name with
      | Some v -> Printf.printf "%-24s %10.1f %10.2f\n" name p v
      | None -> Printf.printf "%-24s %10.1f %10s\n" name p "-")
    paper;
  (* message rate: back-to-back non-blocking puts from one core *)
  let cluster2 = Cnk.Cluster.create ~dims:(2, 1, 1) () in
  Cnk.Cluster.boot_all cluster2;
  let fabric2 = Bg_msg.Dcmf.make_fabric (Cnk.Cluster.machine cluster2) in
  ignore (Bg_msg.Dcmf.attach fabric2 ~rank:0);
  ignore (Bg_msg.Dcmf.attach fabric2 ~rank:1);
  let rate = ref 0.0 in
  let image2 =
    Image.executable ~name:"rate" (fun () ->
        let ctx = Bg_msg.Dcmf.attach fabric2 ~rank:0 in
        let n = 2_000 in
        let t0 = Coro.rdtsc () in
        let last = ref None in
        for _ = 1 to n do
          last := Some (Bg_msg.Dcmf.put ctx ~dst:1 ~tag:1 ~data:(Bytes.make 8 'x'))
        done;
        (match !last with Some h -> Bg_msg.Dcmf.wait h | None -> ());
        rate := float_of_int n /. Cycles.to_seconds (Coro.rdtsc () - t0))
  in
  Cnk.Cluster.run_job cluster2 ~ranks:[ 0 ] (Job.create ~name:"rate" image2);
  Printf.printf "\nsmall-put message rate (one core, non-blocking): %.2f Mmsg/s\n"
    (!rate /. 1e6)

(* ------------------------------------------------------------------ *)
(* E3: Fig 8 -- rendezvous throughput, near-neighbor exchange *)

let aggregate_bw ~bytes ~contiguous =
  let cluster = Cnk.Cluster.create ~dims:(4, 4, 4) () in
  Cnk.Cluster.boot_all cluster;
  let fabric = Bg_msg.Dcmf.make_fabric (Cnk.Cluster.machine cluster) in
  let entry, collect = Bg_apps.Stencil.exchange_program ~fabric ~rank:0 ~bytes ~contiguous in
  List.iter
    (fun r -> ignore (Bg_msg.Dcmf.attach fabric ~rank:r))
    (0 :: Bg_apps.Stencil.neighbors_of (Cnk.Cluster.machine cluster) ~rank:0);
  Cnk.Cluster.run_job cluster ~ranks:[ 0 ]
    (Job.create ~name:"bw" (Image.executable ~name:"bw" entry));
  collect ()

let run_bandwidth () =
  section "E3 (Fig 8): rendezvous throughput, 6-neighbor exchange (aggregate MB/s)";
  Printf.printf "%10s %16s %16s\n" "bytes" "contiguous" "paged(4K)";
  List.iter
    (fun bytes ->
      let c = aggregate_bw ~bytes ~contiguous:true in
      let p = aggregate_bw ~bytes ~contiguous:false in
      Printf.printf "%10d %16.0f %16.0f\n" bytes c p)
    [ 512; 4096; 32_768; 262_144; 1_048_576; 4_194_304 ];
  Printf.printf
    "(shape target: rises with size, saturates near 6 x 425 MB/s with\n contiguous buffers; paged path capped by the bounce copy)\n"

(* ------------------------------------------------------------------ *)
(* E4: section V.D -- performance stability *)

let run_stability () =
  section "E4 (V.D): performance stability";
  let cluster = Cnk.Cluster.create ~dims:(2, 2, 2) () in
  Cnk.Cluster.boot_all cluster;
  let fabric = Bg_msg.Dcmf.make_fabric (Cnk.Cluster.machine cluster) in
  for r = 0 to 7 do
    ignore (Bg_msg.Dcmf.attach fabric ~rank:r)
  done;
  let totals = ref [] in
  for _run = 1 to 36 do
    let coll = Bg_msg.Mpi.Coll.create fabric ~participants:8 in
    let entry, collect =
      Bg_apps.Linpack.program ~fabric ~coll ~panels:60 ~panel_cycles:200_000 ()
    in
    Cnk.Cluster.run_job cluster (Job.create ~name:"hpl" (Image.executable ~name:"hpl" entry));
    totals := float_of_int (collect ()) :: !totals
  done;
  let s = Stats.summarize (Array.of_list !totals) in
  Printf.printf
    "LINPACK proxy, 36 runs on 8 CNK nodes:\n  mean %.0f cycles, spread %.5f%%, stddev %.6f s\n  (paper: 36 runs, 2.11 s spread over 4h28m = 0.013%%, stddev < 1.14 s)\n"
    s.Stats.mean (Stats.spread_percent s)
    (Cycles.to_seconds (int_of_float s.Stats.stddev));
  (* the allreduce bench rides the user-space DMA path *)
  let fabric_dma =
    Bg_msg.Dcmf.make_fabric ~path:Bg_msg.Dcmf.Dma_user (Cnk.Cluster.machine cluster)
  in
  for r = 0 to 7 do
    ignore (Bg_msg.Dcmf.attach fabric_dma ~rank:r)
  done;
  let coll = Bg_msg.Mpi.Coll.create fabric_dma ~participants:8 in
  let entry, collect =
    Bg_apps.Allreduce_bench.program ~fabric:fabric_dma ~coll ~iterations:5_000 ()
  in
  Cnk.Cluster.run_job cluster (Job.create ~name:"ar" (Image.executable ~name:"ar" entry));
  let st = collect () in
  Printf.printf
    "mpiBench_Allreduce on CNK (8 nodes, 5,000 iterations, event-driven):\n  mean %.3f us, stddev %.6f us   (paper: 16 nodes, 1M iterations, stddev 0.0007 us)\n"
    (Stats.Online.mean st) (Stats.Online.stddev st);
  let cnk_std =
    Noise.Scaling.allreduce_stddev_us ~nodes:16 ~iterations:100_000 ~work_cycles:20_000
      ~profile:Noise.Scaling.Quiet ~seed:1L
  in
  let linux_std =
    (* the paper's Linux test ran on I/O nodes with NFS in the background *)
    Noise.Scaling.allreduce_stddev_us ~nodes:4 ~iterations:100_000 ~work_cycles:20_000
      ~profile:Noise.Scaling.Linux_io_node ~seed:1L
  in
  Printf.printf
    "analytic long-run allreduce stddev: CNK 16 nodes %.4f us vs Linux 4 nodes %.2f us\n  (paper: ~0 vs 8.9 us)\n"
    cnk_std linux_std

(* ------------------------------------------------------------------ *)
(* E5: Tables II and III *)

let run_capability () =
  section "E5 (Tables II & III): capability ease matrix";
  Format.printf "Table II - ease of USING a capability:@.%a@." Bg_caps.Matrix.pp_table2 ();
  Format.printf "Table III - ease of IMPLEMENTING the missing ones:@.%a"
    Bg_caps.Matrix.pp_table3 ()

(* ------------------------------------------------------------------ *)
(* E6: section III -- reproducibility and bringup *)

let run_bringup () =
  section "E6 (III): cycle reproducibility, scans, multichip, VHDL boot";
  let run ?(seed = 1L) () =
    let cluster = Cnk.Cluster.create ~dims:(2, 1, 1) ~seed () in
    Cnk.Cluster.boot_all cluster;
    let image =
      Image.executable ~name:"target" (fun () ->
          for _ = 1 to 100 do
            Coro.consume 3_000;
            ignore (Bg_rt.Libc.gettid ())
          done)
    in
    Cnk.Cluster.launch_all cluster ~ranks:[ 0 ] (Job.create ~name:"t" image);
    cluster
  in
  Printf.printf "scan@200000 reproducible across runs: %b\n"
    (Bringup.Waveform.reproducible ~run:(run ~seed:1L) ~rank:0 ~cycle:200_000);
  let a = Bringup.Multichip.aligned_packet_cycle ~seed:2L ~src:0 ~dst:1 ~work_before_send:25_000 () in
  let b = Bringup.Multichip.aligned_packet_cycle ~seed:2L ~src:0 ~dst:1 ~work_before_send:25_000 () in
  Printf.printf "multichip packet alignment across coordinated reboots: %d vs %d (%s)\n" a b
    (if a = b then "aligned" else "MISALIGNED");
  let bug = Bringup.Timing_bug.default_bug in
  let findings = Bringup.Timing_bug.hunt bug ~ranks:4 ~samples:8 ~runs_per_rank:4 ~seed:77L in
  List.iter
    (fun f ->
      Printf.printf
        "timing-bug hunt: chip %d diverges from its golden waveform at cycle %d\n"
        f.Bringup.Timing_bug.rank f.Bringup.Timing_bug.diverged_at)
    findings;
  if findings = [] then Printf.printf "timing-bug hunt: no divergence found\n";
  Format.printf "%a" Bringup.Vhdl_sim.pp (Bringup.Vhdl_sim.comparison ());
  Format.printf "  (paper: CNK boots in a couple of hours; stripped Linux days; full weeks)@."

(* ------------------------------------------------------------------ *)
(* E7: Fig 3 -- static memory layout *)

let run_mapping () =
  section "E7 (Fig 3): CNK static memory partitioning";
  List.iter
    (fun (label, nprocs) ->
      Printf.printf "--- %s mode ---\n" label;
      match Cnk.Mapping.compute { Cnk.Mapping.default_config with Cnk.Mapping.nprocs } with
      | Ok t -> Format.printf "%a" Cnk.Mapping.pp t
      | Error e -> Printf.printf "error: %s\n" e)
    [ ("SMP", 1); ("DUAL", 2); ("VN", 4) ]

(* ------------------------------------------------------------------ *)
(* E8: Fig 4 -- guard pages *)

let run_guard () =
  section "E8 (Fig 4): DAC guard pages";
  let cluster = Cnk.Cluster.create ~dims:(1, 1, 1) () in
  Cnk.Cluster.boot_all cluster;
  let smash =
    Image.executable ~name:"smash" (fun () ->
        let brk = Bg_rt.Libc.brk_now () in
        Coro.store ~addr:(brk + 64) (Bytes.of_string "overflow"))
  in
  Cnk.Cluster.run_job cluster (Job.create ~name:"smash" smash);
  (match Cnk.Node.faults (Cnk.Cluster.node cluster 0) with
  | [ (tid, reason) ] -> Printf.printf "store into guard range: tid %d killed (%s)\n" tid reason
  | _ -> Printf.printf "unexpected fault set\n");
  let cluster2 = Cnk.Cluster.create ~dims:(1, 1, 1) () in
  Cnk.Cluster.boot_all cluster2;
  let grow =
    Image.executable ~name:"grow" (fun () ->
        let before = Bg_rt.Libc.brk_now () in
        let w =
          Bg_rt.Pthread.create (fun () ->
              ignore (Bg_rt.Libc.sbrk (8 * 1024 * 1024));
              Coro.consume 5_000)
        in
        Bg_rt.Pthread.join w;
        Coro.store ~addr:(before + 64) (Bytes.of_string "now-legal");
        Coro.consume 100)
  in
  Cnk.Cluster.run_job cluster2 (Job.create ~name:"grow" grow);
  Printf.printf
    "heap extended by a worker on another core: %d IPI(s) repositioned the guard; main thread's store proceeded (%d faults)\n"
    (Cnk.Node.ipi_count (Cnk.Cluster.node cluster2 0))
    (List.length (Cnk.Node.faults (Cnk.Cluster.node cluster2 0)))

(* ------------------------------------------------------------------ *)
(* A1: noise scaling ablation *)

let run_noise_scaling () =
  section "A1 (ablation): noise magnification with scale (Petrini effect)";
  Printf.printf "%8s %14s %14s %14s %14s\n" "nodes" "CNK(quiet)" "Linux daemons"
    "synchronized" "injected 2.5%";
  let injected =
    Noise.Scaling.Injected
      { Noise.Injection.period_cycles = 850_000; duration_cycles = 21_250; jitter = 0.5 }
  in
  List.iter
    (fun nodes ->
      let f profile =
        Noise.Scaling.allreduce_slowdown ~nodes ~iterations:300 ~work_cycles:850_000
          ~profile ~seed:11L
      in
      Printf.printf "%8d %14.4f %14.4f %14.4f %14.4f\n" nodes (f Noise.Scaling.Quiet)
        (f Noise.Scaling.Linux_daemons)
        (f Noise.Scaling.Linux_synchronized)
        (f injected))
    [ 1; 16; 256; 4096; 65_536 ];
  Printf.printf
    "(the paper's SSV.A framing: coordinating delays bounds the compounding;\n\
    \ eliminating them, as CNK does, removes it)\n"

(* ------------------------------------------------------------------ *)
(* A2: TLB / paging ablation *)

let run_tlb () =
  section "A2 (ablation): static large pages vs 4K demand paging";
  let pages = [ 32; 128; 512; 2048 ] in
  Printf.printf "%12s %22s %26s\n" "touched 4K" "CNK cycles (no misses)" "FWK cycles (faults+TLB)";
  List.iter
    (fun npages ->
      let measure_cnk () =
        let cluster = Cnk.Cluster.create ~dims:(1, 1, 1) () in
        Cnk.Cluster.boot_all cluster;
        let out = ref 0 in
        let image =
          Image.executable ~name:"touch" (fun () ->
              let a = Bg_rt.Malloc.malloc (npages * 4096) in
              let t0 = Coro.rdtsc () in
              for i = 0 to npages - 1 do
                Coro.consume 50;
                Bg_rt.Libc.poke (a + (i * 4096)) i
              done;
              out := Coro.rdtsc () - t0)
        in
        Cnk.Cluster.run_job cluster (Job.create ~name:"t" image);
        !out
      in
      let measure_fwk () =
        let machine = Machine.create ~dims:(1, 1, 1) () in
        let node =
          Bg_fwk.Node.create ~noise_seed:1L ~daemons:Bg_fwk.Noise_model.quiet_daemon_set
            machine ~rank:0 ~stripped:true ()
        in
        let out = ref 0 in
        Bg_fwk.Node.boot node ~on_ready:(fun () ->
            ignore
              (Bg_fwk.Node.launch node
                 (Job.create ~name:"t"
                    (Image.executable ~name:"t" (fun () ->
                         let a = Bg_rt.Malloc.malloc (npages * 4096) in
                         let t0 = Coro.rdtsc () in
                         for i = 0 to npages - 1 do
                           Coro.consume 50;
                           Bg_rt.Libc.poke (a + (i * 4096)) i
                         done;
                         out := Coro.rdtsc () - t0)))));
        ignore (Sim.run machine.Machine.sim);
        !out
      in
      Printf.printf "%12d %22d %26d\n" npages (measure_cnk ()) (measure_fwk ()))
    pages;
  Printf.printf "(CNK: static 16M-1G pages, zero translation cost at run time)\n"

(* ------------------------------------------------------------------ *)
(* A3: scheduler ablation *)

let run_sched () =
  section "A3 (ablation): non-preemptive fixed affinity vs preemptive time-slicing";
  let cnk = Noise.Fwq_harness.run_on_cnk ~samples:3_000 () in
  let fwk_quiet =
    Noise.Fwq_harness.run_on_fwk ~samples:3_000 ~noise_seed:5L
      ~daemons:Bg_fwk.Noise_model.quiet_daemon_set ()
  in
  let fwk_full = Noise.Fwq_harness.run_on_fwk ~samples:3_000 ~noise_seed:5L () in
  Printf.printf "FWQ max spread: CNK %.5f%% | FWK ticks-only %.3f%% | FWK full daemons %.3f%%\n"
    (Noise.Fwq_harness.max_spread cnk)
    (Noise.Fwq_harness.max_spread fwk_quiet)
    (Noise.Fwq_harness.max_spread fwk_full)


(* ------------------------------------------------------------------ *)
(* SSVIII: extended thread affinity *)

let run_affinity () =
  section "SSVIII: extended thread affinity (one process borrowing idle cores)";
  let flag_addr = Cnk.Mapping.shared_va in
  let phase ~designate =
    let cluster = Cnk.Cluster.create ~dims:(1, 1, 1) () in
    Cnk.Cluster.boot_all cluster;
    let node = Cnk.Cluster.node cluster 0 in
    let created = ref 0 and cycles = ref 0 in
    let image =
      Image.executable ~name:"omp-phase" (fun () ->
          if Bg_rt.Libc.getpid () = 1 then begin
            let t0 = Coro.rdtsc () in
            let hs = ref [] in
            for _ = 1 to 3 do
              match Bg_rt.Pthread.create (fun () -> Coro.consume 400_000) with
              | h -> incr created; hs := h :: !hs
              | exception Sysreq.Syscall_error Errno.EAGAIN -> ()
            done;
            Coro.consume 400_000;
            List.iter Bg_rt.Pthread.join !hs;
            cycles := Coro.rdtsc () - t0;
            Bg_rt.Libc.poke flag_addr 1
          end
          else begin
            let rec idle () =
              if Bg_rt.Libc.peek flag_addr = 0 then begin
                ignore (Coro.syscall Sysreq.Sched_yield);
                Coro.consume 1_000;
                idle ()
              end
            in
            idle ()
          end)
    in
    (match
       Cnk.Node.launch node (Job.create ~mode:Job.Vn ~threads_per_core:1 ~name:"p" image)
     with
    | Ok () -> ()
    | Error e -> failwith e);
    if designate then
      List.iter
        (fun core ->
          match Cnk.Node.designate_remote node ~core ~pid:1 with
          | Ok () -> ()
          | Error e -> failwith e)
        [ 1; 2; 3 ];
    Cnk.Cluster.run_until_quiet cluster;
    (!created, !cycles)
  in
  let c0, t0 = phase ~designate:false in
  let c1, t1 = phase ~designate:true in
  Printf.printf
    "without designation: %d extra threads placed (EAGAIN), OpenMP phase work 400k in %d cycles\n"
    c0 t0;
  Printf.printf
    "with remote cores:   %d extra threads placed, 1.6M cycles of work in %d cycles (%.2fx throughput)\n"
    c1 t1
    (4.0 *. float_of_int t0 /. float_of_int t1)

(* ------------------------------------------------------------------ *)
(* SSIII: cache-bank mapping exploration *)

let run_cache () =
  section "SSIII: L2 bank-mapping exploration (design-time experiments)";
  let results =
    Bringup.Cache_explore.sweep
      ~mappings:[ Bg_hw.Cache.Modulo_line; Bg_hw.Cache.Xor_fold; Bg_hw.Cache.Fixed 0 ]
      ()
  in
  Format.printf "%a" Bringup.Cache_explore.pp results;
  Printf.printf "(a pathological 1 KiB stride; fixed-bank is the artificial-conflict config)\n"

(* ------------------------------------------------------------------ *)
(* SSV.B: L1 parity recovery (the Gordon Bell mechanism) *)

let run_l1_parity () =
  section "SSV.B: L1 parity error signaled to the application";
  let cluster = Cnk.Cluster.create ~dims:(1, 1, 1) () in
  Cnk.Cluster.boot_all cluster;
  let node = Cnk.Cluster.node cluster 0 in
  let recovered = ref 0 in
  let image =
    Image.executable ~name:"gb" (fun () ->
        Sysreq.expect_unit
          (Coro.syscall
             (Sysreq.Sigaction { signo = 7; handler = Some (fun _ -> incr recovered) }));
        for _ = 1 to 30 do
          Coro.consume 100_000
        done)
  in
  (match Cnk.Node.launch node (Job.create ~name:"gb" image) with
  | Ok () -> ()
  | Error e -> failwith e);
  List.iter
    (fun at ->
      ignore
        (Sim.schedule_at (Cnk.Cluster.sim cluster) at (fun () ->
             ignore (Cnk.Node.inject_l1_parity_error node ~core:0))))
    [ 2_600_000; 3_400_000; 4_200_000 ];
  Cnk.Cluster.run_until_quiet cluster;
  Printf.printf
    "3 parity errors injected; %d recovered in place; %d fatal faults (paper: recovery \
     without heavy checkpoint/restart cycles)\n"
    !recovered
    (List.length (Cnk.Node.faults node))

(* ------------------------------------------------------------------ *)
(* FTQ companion benchmark *)

let run_ftq () =
  section "FTQ: work per fixed 1ms window (companion of FWQ)";
  let on_cnk inject =
    let cluster = Cnk.Cluster.create ~dims:(1, 1, 1) () in
    Cnk.Cluster.boot_all cluster;
    if inject then
      Noise.Injection.attach (Cnk.Cluster.node cluster 0)
        ~profile:
          { Noise.Injection.period_cycles = 3_000_000; duration_cycles = 150_000; jitter = 0.4 }
        ~seed:4L
        ~until:(Sim.now (Cnk.Cluster.sim cluster) + 2_000_000_000);
    let entry, collect = Bg_apps.Ftq.program ~windows:300 () in
    Cnk.Cluster.run_job cluster (Job.create ~name:"ftq" (Image.executable ~name:"ftq" entry));
    collect ()
  in
  let quiet = on_cnk false in
  let noisy = on_cnk true in
  Printf.printf "CNK quiet:    %d..%d units/window (spread %.2f%%)\n"
    (Bg_apps.Ftq.min_count quiet) (Bg_apps.Ftq.max_count quiet)
    (Bg_apps.Ftq.spread_percent quiet);
  Printf.printf "CNK injected: %d..%d units/window (spread %.2f%%)\n"
    (Bg_apps.Ftq.min_count noisy) (Bg_apps.Ftq.max_count noisy)
    (Bg_apps.Ftq.spread_percent noisy)

(* ------------------------------------------------------------------ *)
(* SSVII.A: I/O aggregation -- filesystem clients vs offload latency *)

let run_io_offload () =
  section "SSVII.A: function-ship aggregation (fs clients reduced, latency cost)";
  Printf.printf "%14s %12s %22s\n" "CN per IO node" "fs clients" "mean write latency (us)";
  List.iter
    (fun per_ion ->
      let cluster = Cnk.Cluster.create ~dims:(4, 4, 1) ~nodes_per_io_node:per_ion () in
      Cnk.Cluster.boot_all cluster;
      let lat = Stats.Online.create () in
      let image =
        Image.executable ~name:"w" (fun () ->
            let fd =
              Bg_rt.Libc.openf
                ~flags:{ Sysreq.o_rdwr with Sysreq.creat = true }
                (Printf.sprintf "f%d" (Bg_rt.Libc.rank ()))
            in
            for _ = 1 to 5 do
              let t0 = Coro.rdtsc () in
              ignore (Bg_rt.Libc.write fd (Bytes.make 4096 'x'));
              Stats.Online.add lat (Cycles.to_us (Coro.rdtsc () - t0))
            done;
            Bg_rt.Libc.close fd)
      in
      Cnk.Cluster.run_job cluster (Job.create ~name:"w" image);
      let io_nodes = (16 + per_ion - 1) / per_ion in
      Printf.printf "%14d %12d %22.2f\n" per_ion io_nodes (Stats.Online.mean lat))
    [ 1; 4; 16 ];
  Printf.printf
    "(16 compute nodes; aggregation trades a little latency for far fewer fs clients)\n";
  (* IOR-style aggregate write throughput vs participating ranks *)
  Printf.printf "\nIOR-style aggregate write bandwidth (64 KiB blocks, 1 I/O node):\n";
  Printf.printf "%8s %18s\n" "ranks" "aggregate MB/s";
  List.iter
    (fun ranks ->
      let cluster = Cnk.Cluster.create ~dims:(16, 1, 1) () in
      Cnk.Cluster.boot_all cluster;
      let entry, collect =
        Bg_apps.Ior_proxy.program ~bytes_per_rank:(1 lsl 20) ~block_bytes:(64 * 1024) ()
      in
      Cnk.Cluster.run_job cluster
        ~ranks:(List.init ranks Fun.id)
        (Job.create ~name:"ior" (Image.executable ~name:"ior" entry));
      let r = collect ~collect_from:(Cnk.Cluster.machine cluster) () in
      Printf.printf "%8d %18.0f\n" ranks r.Bg_apps.Ior_proxy.aggregate_mbps)
    [ 1; 2; 4; 8; 16 ];
  Printf.printf "(saturates at the collective-network uplink: ~850 MB/s per I/O node)\n"


(* ------------------------------------------------------------------ *)
(* SSV.B ablation: parity recovery vs checkpoint/restart *)

let run_recovery () =
  section "SSV.B (ablation): in-place parity recovery vs checkpoint/restart";
  (* a 40-block computation over 4 MB of state; one transient fault *)
  let blocks = 40 and block_cycles = 200_000 and state_bytes = 4 * 1024 * 1024 in
  let run_strategy strategy =
    let cluster = Cnk.Cluster.create ~dims:(1, 1, 1) () in
    Cnk.Cluster.boot_all cluster;
    let node = Cnk.Cluster.node cluster 0 in
    let wall = ref 0 and io_bytes = ref 0 in
    let image =
      Image.executable ~name:"rec" (fun () ->
          let state = Bg_rt.Malloc.malloc state_bytes in
          let regions = [ (state, state_bytes) ] in
          let faulted = Bg_rt.Malloc.malloc 8 in
          Bg_rt.Libc.poke faulted 0;
          Sysreq.expect_unit
            (Coro.syscall
               (Sysreq.Sigaction { signo = 7; handler = Some (fun _ -> ()) }));
          let t0 = Coro.rdtsc () in
          (match strategy with
          | `Parity_recovery ->
            (* handler marks the block; redo just that block *)
            let b = ref 0 in
            while !b < blocks do
              Coro.consume block_cycles;
              if !b = 24 && Bg_rt.Libc.peek faulted = 0 then begin
                (* fault detected mid-block: recompute it *)
                Bg_rt.Libc.poke faulted 1;
                Coro.consume block_cycles
              end;
              incr b
            done
          | `Checkpoint k ->
            (* checkpoint every k blocks; fault at block 24 forces restore
               and recompute from the last checkpoint *)
            let b = ref 0 in
            while !b < blocks do
              if !b mod k = 0 then io_bytes := !io_bytes + Bg_apps.Checkpoint.save ~name:"st" ~regions;
              Coro.consume block_cycles;
              if !b = 24 && Bg_rt.Libc.peek faulted = 0 then begin
                Bg_rt.Libc.poke faulted 1;
                ignore (Bg_apps.Checkpoint.restore ~name:"st" ~regions);
                b := !b / k * k - 1 (* resume from the checkpointed block *)
              end;
              incr b
            done);
          wall := Coro.rdtsc () - t0)
    in
    Cnk.Cluster.run_job cluster (Job.create ~name:"rec" image);
    assert (Cnk.Node.faults node = []);
    (!wall, !io_bytes)
  in
  let ideal = blocks * 200_000 in
  let p_wall, _ = run_strategy `Parity_recovery in
  let c_wall, c_io = run_strategy (`Checkpoint 8) in
  Printf.printf "fault-free compute:          %9d cycles\n" ideal;
  Printf.printf "parity recovery (SSV.B):     %9d cycles (+%.1f%%), 0 checkpoint bytes\n"
    p_wall
    (100.0 *. float_of_int (p_wall - ideal) /. float_of_int ideal);
  Printf.printf
    "checkpoint/restart (k=8):    %9d cycles (+%.1f%%), %d MB shipped to the I/O node\n"
    c_wall
    (100.0 *. float_of_int (c_wall - ideal) /. float_of_int ideal)
    (c_io / 1024 / 1024);
  Printf.printf "(the paper: signaling the app avoids heavy I/O-bound checkpoint/restart)\n"


(* ------------------------------------------------------------------ *)
(* collectives: tree vs torus allreduce crossover *)

let run_collectives () =
  section "collectives: double allreduce routing, tree vs torus (8 nodes)";
  let cluster = Cnk.Cluster.create ~dims:(2, 2, 2) () in
  Cnk.Cluster.boot_all cluster;
  let fabric = Bg_msg.Dcmf.make_fabric (Cnk.Cluster.machine cluster) in
  for r = 0 to 7 do
    ignore (Bg_msg.Dcmf.attach fabric ~rank:r)
  done;
  let coll = Bg_msg.Mpi.Coll.create fabric ~participants:8 in
  Printf.printf "%12s %14s %14s %10s\n" "elements" "tree (us)" "torus (us)" "winner";
  List.iter
    (fun elements ->
      let tree =
        Cycles.to_us (Bg_msg.Mpi.Coll.estimate_vector_cycles coll Bg_msg.Mpi.Coll.Tree ~elements)
      in
      let torus =
        Cycles.to_us (Bg_msg.Mpi.Coll.estimate_vector_cycles coll Bg_msg.Mpi.Coll.Torus ~elements)
      in
      Printf.printf "%12d %14.1f %14.1f %10s\n" elements tree torus
        (if tree <= torus then "tree" else "torus"))
    [ 1; 64; 1024; 16_384; 262_144; 4_194_304 ];
  Printf.printf
    "(the classic BG/P split: latency-bound reductions ride the collective\n\
    \ network; bandwidth-bound doubles move to the torus)\n";
  Printf.printf "\nalltoall (FFT transpose) on the torus, bisection-limited:\n";
  List.iter
    (fun bytes ->
      Printf.printf "  %8d B/pair: %10.1f us\n" bytes
        (Cycles.to_us (Bg_msg.Mpi.Coll.alltoall_cycles coll ~bytes_per_pair:bytes)))
    [ 1024; 65_536; 1_048_576 ]


(* ------------------------------------------------------------------ *)
(* halo exchange weak scaling, quiet vs noisy kernel *)

let run_halo () =
  section "halo exchange: weak scaling on CNK, quiet vs injected noise";
  let run ~ranks ~inject =
    let cluster = Cnk.Cluster.create ~dims:(ranks, 1, 1) () in
    Cnk.Cluster.boot_all cluster;
    if inject then
      Array.iter
        (fun node ->
          Noise.Injection.attach node
            ~profile:
              { Noise.Injection.period_cycles = 850_000; duration_cycles = 25_500; jitter = 0.5 }
            ~seed:(Int64.of_int (Cnk.Node.rank node + 1))
            ~until:(Sim.now (Cnk.Cluster.sim cluster) + 4_000_000_000))
        (Cnk.Cluster.nodes cluster);
    (* the halo exchange now rides the descriptor-based user-space DMA
       path, as DCMF does on real CNK *)
    let fabric =
      Bg_msg.Dcmf.make_fabric ~path:Bg_msg.Dcmf.Dma_user
        (Cnk.Cluster.machine cluster)
    in
    for r = 0 to ranks - 1 do
      ignore (Bg_msg.Dcmf.attach fabric ~rank:r)
    done;
    let entry, collect =
      Bg_apps.Halo.program ~fabric ~cells_per_rank:64 ~iterations:40
        ~compute_cycles_per_cell:2_000 ()
    in
    Cnk.Cluster.run_job cluster (Job.create ~name:"halo" (Image.executable ~name:"halo" entry));
    let r = collect () in
    (r.Bg_apps.Halo.wall_cycles, r.Bg_apps.Halo.descriptors)
  in
  let base, _ = run ~ranks:1 ~inject:false in
  Printf.printf "%6s %16s %12s %18s %12s %8s\n" "ranks" "quiet cycles" "efficiency"
    "3pc-noise cycles" "efficiency" "descs";
  List.iter
    (fun ranks ->
      let quiet, descs = run ~ranks ~inject:false in
      let noisy, _ = run ~ranks ~inject:true in
      Printf.printf "%6d %16d %11.1f%% %18d %11.1f%% %8d\n" ranks quiet
        (100.0 *. float_of_int base /. float_of_int quiet)
        noisy
        (100.0 *. float_of_int base /. float_of_int noisy)
        descs)
    [ 1; 2; 4; 8 ];
  Printf.printf
    "(weak scaling: constant work per rank; every iteration synchronizes with\n\
    \ both neighbors, so per-node noise compounds with scale)\n"


(* ------------------------------------------------------------------ *)
(* CG solver: the NEK/QBOX-style workload, convergence + noise cost *)

let run_cg () =
  section "cg solver: distributed conjugate gradient (halo + 2 allreduces/iter)";
  let run ~inject =
    let ranks = 8 in
    let cluster = Cnk.Cluster.create ~dims:(ranks, 1, 1) () in
    Cnk.Cluster.boot_all cluster;
    if inject then
      Array.iter
        (fun node ->
          Noise.Injection.attach node
            ~profile:
              { Noise.Injection.period_cycles = 850_000; duration_cycles = 25_500; jitter = 0.5 }
            ~seed:(Int64.of_int (Cnk.Node.rank node + 1))
            ~until:(Sim.now (Cnk.Cluster.sim cluster) + 8_000_000_000))
        (Cnk.Cluster.nodes cluster);
    let fabric = Bg_msg.Dcmf.make_fabric (Cnk.Cluster.machine cluster) in
    for r = 0 to ranks - 1 do
      ignore (Bg_msg.Dcmf.attach fabric ~rank:r)
    done;
    let coll = Bg_msg.Mpi.Coll.create fabric ~participants:ranks in
    let entry, collect =
      Bg_apps.Cg_solver.program ~fabric ~coll ~cells_per_rank:32 ~iterations:40 ()
    in
    Cnk.Cluster.run_job cluster (Job.create ~name:"cg" (Image.executable ~name:"cg" entry));
    collect ()
  in
  let quiet = run ~inject:false in
  let noisy = run ~inject:true in
  Printf.printf "8 ranks x 32 cells, 40 iterations:\n";
  Printf.printf "  residual %.3e -> %.3e (must match the dense reference)\n"
    quiet.Bg_apps.Cg_solver.initial_residual quiet.Bg_apps.Cg_solver.final_residual;
  Printf.printf "  quiet CNK:      %9d cycles\n" quiet.Bg_apps.Cg_solver.wall_cycles;
  Printf.printf "  with 3%% noise:  %9d cycles (+%.1f%%)\n"
    noisy.Bg_apps.Cg_solver.wall_cycles
    (100.0
    *. float_of_int
         (noisy.Bg_apps.Cg_solver.wall_cycles - quiet.Bg_apps.Cg_solver.wall_cycles)
    /. float_of_int quiet.Bg_apps.Cg_solver.wall_cycles);
  Printf.printf
    "(two allreduces per iteration: every straggler delay lands on the critical path)\n"


(* ------------------------------------------------------------------ *)
(* torus congestion: nearest-neighbor vs random-permutation traffic *)

let run_congestion () =
  section "torus congestion: aggregate bandwidth by traffic pattern (64 nodes)";
  let bytes = 1 lsl 20 in
  let measure pattern_name pairs =
    let cluster = Cnk.Cluster.create ~dims:(4, 4, 4) ~seed:3L () in
    Cnk.Cluster.boot_all cluster;
    let machine = Cnk.Cluster.machine cluster in
    let sim = Cnk.Cluster.sim cluster in
    let t0 = ref max_int and t1 = ref 0 and outstanding = ref (List.length pairs) in
    let finished = ref false in
    ignore
      (Sim.schedule_in sim 1 (fun () ->
           t0 := Sim.now sim;
           List.iter
             (fun (src, dst) ->
               Bg_hw.Torus.transfer machine.Machine.torus ~src ~dst ~bytes
                 ~on_arrival:(fun ~arrival_cycle ->
                   t1 := max !t1 arrival_cycle;
                   decr outstanding;
                   if !outstanding = 0 then finished := true)
                 ())
             pairs));
    ignore (Sim.run sim);
    assert !finished;
    let total = List.length pairs * bytes in
    let mbps = float_of_int total /. Cycles.to_seconds (!t1 - !t0) /. 1e6 in
    Printf.printf "  %-22s %8.0f MB/s aggregate (%d flows)\n" pattern_name mbps
      (List.length pairs)
  in
  let n = 64 in
  let neighbor_pairs =
    List.init n (fun r ->
        let machine = Machine.create ~dims:(4, 4, 4) () in
        (r, List.hd (Bg_apps.Stencil.neighbors_of machine ~rank:r)))
  in
  let shift_pairs = List.init n (fun r -> (r, (r + (n / 2)) mod n)) in
  let rng = Rng.create 99L in
  let perm = Array.init n Fun.id in
  for i = n - 1 downto 1 do
    let j = Rng.int rng (i + 1) in
    let tmp = perm.(i) in
    perm.(i) <- perm.(j);
    perm.(j) <- tmp
  done;
  let random_pairs =
    Array.to_list (Array.mapi (fun i p -> (i, p)) perm)
    |> List.filter (fun (a, b) -> a <> b)
  in
  measure "nearest neighbor" neighbor_pairs;
  measure "random permutation" random_pairs;
  measure "bisection shift (n/2)" shift_pairs;
  Printf.printf
    "(neighbor traffic uses every link once; long-haul patterns pile onto\n\
    \ shared links and lose to contention -- why BG codes map to the torus)\n"

(* ------------------------------------------------------------------ *)
(* Bechamel micro-benchmarks of the simulator itself *)

let run_micro () =
  section "micro: simulator wall-clock throughput (Bechamel)";
  let open Bechamel in
  let test_queue =
    Test.make ~name:"event_queue add+pop x100"
      (Staged.stage (fun () ->
           let q = Event_queue.create () in
           for i = 1 to 100 do
             ignore (Event_queue.add q ~time:(i * 7 mod 50) i)
           done;
           while Event_queue.pop q <> None do
             ()
           done))
  in
  let test_memory =
    Test.make ~name:"memory write+read 4K"
      (Staged.stage
         (let m = Bg_hw.Memory.create ~size:(1 lsl 20) in
          let b = Bytes.make 4096 'x' in
          fun () ->
            Bg_hw.Memory.write m ~addr:8192 b;
            ignore (Bg_hw.Memory.read m ~addr:8192 ~len:4096)))
  in
  let test_proto =
    Test.make ~name:"proto encode+decode write(1K)"
      (Staged.stage
         (let hdr = { Bg_cio.Proto.rank = 3; pid = 1; tid = 9 } in
          let req = Sysreq.Write { fd = 4; data = Bytes.make 1024 'd' } in
          fun () ->
            let b = Bg_cio.Proto.encode_request hdr req in
            ignore (Bg_cio.Proto.decode_request b)))
  in
  let test_fwq_sim =
    Test.make ~name:"full CNK job (100 quanta)"
      (Staged.stage (fun () ->
           let cluster = Cnk.Cluster.create ~dims:(1, 1, 1) () in
           Cnk.Cluster.boot_all cluster;
           let entry, _ = Bg_apps.Fwq.program ~samples:25 ~threads:4 () in
           Cnk.Cluster.run_job cluster
             (Job.create ~name:"f" (Image.executable ~name:"f" entry))))
  in
  let tests =
    Test.make_grouped ~name:"sim" [ test_queue; test_memory; test_proto; test_fwq_sim ]
  in
  let cfg = Benchmark.cfg ~limit:2000 ~quota:(Time.second 0.5) ~kde:(Some 1000) () in
  let raw = Benchmark.all cfg Toolkit.Instance.[ monotonic_clock ] tests in
  let ols = Analyze.ols ~bootstrap:0 ~r_square:false ~predictors:[| Measure.run |] in
  let results = Analyze.all ols Toolkit.Instance.monotonic_clock raw in
  Hashtbl.iter
    (fun name result ->
      match Analyze.OLS.estimates result with
      | Some [ est ] -> Printf.printf "  %-40s %12.0f ns/run\n" name est
      | _ -> Printf.printf "  %-40s (no estimate)\n" name)
    results

(* ------------------------------------------------------------------ *)

(* ------------------------------------------------------------------ *)
(* Table I over the DMA engine: CNK user-space vs FWK kernel-mediated *)

let run_msg () =
  section "messaging: DMA engine, user-space (CNK) vs kernel-mediated (FWK)";
  let results = Bg_msgbench.Msgbench.run_all () in
  Bg_msgbench.Msgbench.pp_table Format.std_formatter results;
  Format.pp_print_flush Format.std_formatter ();
  let oc = open_out "BENCH_msg.json" in
  output_string oc (Bg_msgbench.Msgbench.to_json results);
  close_out oc;
  Printf.printf "wrote BENCH_msg.json (digest %s)\n"
    (Bg_msgbench.Msgbench.digest results)

(* ------------------------------------------------------------------ *)
(* Observability overhead: the zero-cost-by-default claim, measured *)

let run_obs () =
  section "obs: collection overhead (off / spans / spans+causal)";
  (* One seeded syscall-heavy CNK job per cell (every pwrite is a
     function-shipped span plus causal nodes and edges). The collectors
     are passive, so all three cells process the identical architectural
     event stream — the trace-record count is the (deterministic) work
     measure and wall time is the only thing that moves. *)
  let cell ~name ~spans ~causal =
    let t0 = Unix.gettimeofday () in
    let cluster = Cnk.Cluster.create ~dims:(1, 1, 1) ~seed:1L () in
    let machine = Cnk.Cluster.machine cluster in
    Bg_obs.Obs.set_enabled machine.Machine.obs spans;
    Bg_obs.Causal.set_enabled (Machine.causal machine) causal;
    Cnk.Cluster.boot_all cluster;
    let entry () =
      let fd = Bg_rt.Libc.openf ~flags:Sysreq.o_create_trunc "/bench_obs.dat" in
      let block = Bytes.make 64 'b' in
      for i = 0 to 1_999 do
        ignore (Bg_rt.Libc.pwrite fd block ~offset:(i * 64))
      done;
      Bg_rt.Libc.close fd
    in
    Cnk.Cluster.run_job cluster (Job.create ~name:"iobench" (Image.executable ~name:"iobench" entry));
    let wall = Unix.gettimeofday () -. t0 in
    let events = Bg_engine.Trace.count (Bg_engine.Sim.trace (Cnk.Cluster.sim cluster)) in
    let spans_n = Bg_obs.Obs.span_count machine.Machine.obs in
    let causal_n = Bg_obs.Causal.node_count (Machine.causal machine) in
    let eps = float_of_int events /. wall in
    Printf.printf "  %-14s %8d events  %6.3f s  %12.0f events/s  (%d spans, %d causal nodes)\n%!"
      name events wall eps spans_n causal_n;
    (name, events, wall, eps, spans_n, causal_n)
  in
  let cells =
    [
      cell ~name:"off" ~spans:false ~causal:false;
      cell ~name:"spans" ~spans:true ~causal:false;
      cell ~name:"spans+causal" ~spans:true ~causal:true;
    ]
  in
  let buf = Buffer.create 512 in
  Buffer.add_string buf "{\"experiment\":\"obs\",\"workload\":\"cnk pwrite x2000\",\"cells\":[";
  List.iteri
    (fun i (name, events, wall, eps, spans_n, causal_n) ->
      if i > 0 then Buffer.add_char buf ',';
      Buffer.add_string buf
        (Printf.sprintf
           "{\"name\":\"%s\",\"events\":%d,\"wall_s\":%.6f,\"events_per_sec\":%.0f,\"spans\":%d,\"causal_nodes\":%d}"
           name events wall eps spans_n causal_n))
    cells;
  Buffer.add_string buf "]}";
  let oc = open_out "BENCH_obs.json" in
  output_string oc (Buffer.contents buf);
  close_out oc;
  Printf.printf "wrote BENCH_obs.json\n"

(* ------------------------------------------------------------------ *)
(* Health-service overhead: windowed sampling and alert evaluation *)

let run_health () =
  section "health: sampling overhead (off / sampling / sampling+alerts)";
  (* Same seeded pwrite workload as the obs experiment, so the two JSON
     files are directly comparable: the health tick is passive, all
     three cells process the identical architectural event stream, and
     the acceptance bar is that windowed sampling costs less than the
     spans+causal collectors measured in BENCH_obs.json. *)
  let rules =
    List.map
      (fun s ->
        match Bg_obs.Health.parse_rule s with
        | Ok r -> r
        | Error e -> failwith ("bench health: bad rule: " ^ e))
      [
        "retransmit_rate: cio.retransmits rate >= 10 warn";
        "ras_errors: ras.error value >= 1 error";
        "dma_stall: dma.inject_stalls value > 0 warn";
        "span_loss: obs.dropped_spans delta > 0 info";
      ]
  in
  let cell ~name ~health ~rules =
    let t0 = Unix.gettimeofday () in
    let cluster = Cnk.Cluster.create ~dims:(1, 1, 1) ~seed:1L () in
    let machine = Cnk.Cluster.machine cluster in
    Bg_obs.Obs.set_enabled machine.Machine.obs true;
    let svc =
      if health then Some (Machine.attach_health ~window:100_000 ~rules machine)
      else None
    in
    Cnk.Cluster.boot_all cluster;
    let entry () =
      let fd = Bg_rt.Libc.openf ~flags:Sysreq.o_create_trunc "/bench_obs.dat" in
      let block = Bytes.make 64 'b' in
      for i = 0 to 1_999 do
        ignore (Bg_rt.Libc.pwrite fd block ~offset:(i * 64))
      done;
      Bg_rt.Libc.close fd
    in
    Cnk.Cluster.run_job cluster (Job.create ~name:"iobench" (Image.executable ~name:"iobench" entry));
    let wall = Unix.gettimeofday () -. t0 in
    let events = Bg_engine.Trace.count (Bg_engine.Sim.trace (Cnk.Cluster.sim cluster)) in
    let windows, alerts =
      match svc with
      | None -> (0, 0)
      | Some h ->
        ( Bg_obs.Timeseries.windows_sampled h.Machine.h_ts,
          Bg_obs.Health.alert_count h.Machine.h_svc )
    in
    let eps = float_of_int events /. wall in
    Printf.printf
      "  %-16s %8d events  %6.3f s  %12.0f events/s  (%d windows, %d alerts)\n%!"
      name events wall eps windows alerts;
    (name, events, wall, eps, windows, alerts)
  in
  let cells =
    [
      cell ~name:"off" ~health:false ~rules:[];
      cell ~name:"sampling" ~health:true ~rules:[];
      cell ~name:"sampling+alerts" ~health:true ~rules;
    ]
  in
  let buf = Buffer.create 512 in
  Buffer.add_string buf
    "{\"experiment\":\"health\",\"workload\":\"cnk pwrite x2000\",\"cells\":[";
  List.iteri
    (fun i (name, events, wall, eps, windows, alerts) ->
      if i > 0 then Buffer.add_char buf ',';
      Buffer.add_string buf
        (Printf.sprintf
           "{\"name\":\"%s\",\"events\":%d,\"wall_s\":%.6f,\"events_per_sec\":%.0f,\"windows\":%d,\"alerts\":%d}"
           name events wall eps windows alerts))
    cells;
  Buffer.add_string buf "]}";
  let oc = open_out "BENCH_health.json" in
  output_string oc (Buffer.contents buf);
  close_out oc;
  Printf.printf "wrote BENCH_health.json\n"

let run_snap () =
  section "snap: snapshot size, capture/restore cost, bisect probe speedup";
  (* Snapshot cost vs machine size: the cnk_io scenario at 1..8 nodes,
     captured halfway through its run, then restored (deterministic
     replay to the cursor + byte verification of every region). *)
  let module Snaprun = Bg_snaprun.Snaprun in
  let scn name =
    match Snaprun.find name with Some s -> s | None -> failwith ("no scenario " ^ name)
  in
  let cnk = scn "cnk_io" in
  let cells =
    List.map
      (fun nodes ->
        let knobs = [ ("nodes", string_of_int nodes) ] in
        let ref_inst = cnk.Snaprun.build ~seed:1L ~knobs in
        let final = Snaprun.run_until_quiet ref_inst in
        let cursor = final / 2 in
        let inst = cnk.Snaprun.build ~seed:1L ~knobs in
        ignore (Snaprun.run_to inst ~events:cursor);
        let t0 = Unix.gettimeofday () in
        let file = Snaprun.snapshot_of cnk inst ~knobs in
        let capture_s = Unix.gettimeofday () -. t0 in
        let bytes = Bytes.length (Bg_snap.Snap.encode file) in
        let t1 = Unix.gettimeofday () in
        (match Snaprun.restore cnk file with
        | Ok _ -> ()
        | Error e -> failwith ("bench snap: restore failed: " ^ e));
        let restore_s = Unix.gettimeofday () -. t1 in
        Printf.printf
          "  %d node(s): %6d bytes  capture %.4f s  replay-restore %.4f s (cursor %d/%d)\n%!"
          nodes bytes capture_s restore_s cursor final;
        (nodes, bytes, capture_s, restore_s, cursor, final))
      [ 1; 2; 4; 8 ]
  in
  (* Bisect-probe economics on a long FWQ run: a probe replays only to
     its cursor, so early-divergence probes cost a fraction of a full
     cold run — the property that makes the binary search cheap. *)
  let fwk = scn "fwk_noise" in
  let quanta = 4_000 in
  let knobs = [ ("quanta", string_of_int quanta) ] in
  let t0 = Unix.gettimeofday () in
  let ref_inst = fwk.Snaprun.build ~seed:1L ~knobs in
  let final = Snaprun.run_until_quiet ref_inst in
  let full_s = Unix.gettimeofday () -. t0 in
  let cursor = final / 10 in
  let _, file, _ = Snaprun.snapshot_at fwk ~seed:1L ~knobs ~events:cursor in
  let t1 = Unix.gettimeofday () in
  (match Snaprun.restore fwk file with
  | Ok _ -> ()
  | Error e -> failwith ("bench snap: fwk restore failed: " ^ e));
  let probe_s = Unix.gettimeofday () -. t1 in
  let speedup = if probe_s > 0. then full_s /. probe_s else 0. in
  Printf.printf
    "  FWQ x%d: cold run %.4f s (%d events); probe to 10%% cursor %.4f s — %.1fx\n%!"
    quanta full_s final probe_s speedup;
  let buf = Buffer.create 512 in
  Buffer.add_string buf "{\"experiment\":\"snap\",\"cells\":[";
  List.iteri
    (fun i (nodes, bytes, capture_s, restore_s, cursor, final) ->
      if i > 0 then Buffer.add_char buf ',';
      Buffer.add_string buf
        (Printf.sprintf
           "{\"nodes\":%d,\"snapshot_bytes\":%d,\"capture_s\":%.6f,\"restore_s\":%.6f,\"cursor\":%d,\"final_events\":%d}"
           nodes bytes capture_s restore_s cursor final))
    cells;
  Buffer.add_string buf
    (Printf.sprintf
       "],\"fastforward\":{\"workload\":\"fwk_noise quanta=%d\",\"full_run_s\":%.6f,\"final_events\":%d,\"probe_cursor\":%d,\"probe_s\":%.6f,\"speedup\":%.2f}}"
       quanta full_s final cursor probe_s speedup);
  let oc = open_out "BENCH_snap.json" in
  output_string oc (Buffer.contents buf);
  close_out oc;
  Printf.printf "wrote BENCH_snap.json\n"

(* ------------------------------------------------------------------ *)
(* recover: closed-loop recovery cost — the classic immediate policy vs
   the self-healing engine (backoff + spare substitution) on the same
   fault campaign. MTTR and checkpoint savings quantify the loop. *)

let run_recover () =
  let module Ctl = Bg_control in
  let module Res = Bg_resilience in
  section "recover: classic immediate recovery vs self-healing policy engine";
  let mk_spec name steps =
    {
      Res.Ckpt.name;
      steps;
      step_cycles = 20_000;
      state_bytes = 8 * 1024;
      ckpt_every = 4;
      full_every = 2;
      strategy = Res.Ckpt.Parity_inplace;
    }
  in
  let cell ~name ~policy =
    let t0 = Unix.gettimeofday () in
    let cluster = Cnk.Cluster.create ~dims:(4, 1, 1) ~seed:1L () in
    let machine = Cnk.Cluster.machine cluster in
    Bg_obs.Obs.set_enabled machine.Machine.obs true;
    Cnk.Cluster.boot_all cluster;
    let fabric = Bg_msg.Dcmf.make_fabric machine in
    let sched = Ctl.Scheduler.create cluster in
    if policy then
      Ctl.Partition.set_spare (Ctl.Scheduler.partition sched) ~rank:3 true;
    let inj = Res.Injector.attach cluster in
    if policy then ignore (Res.Policy.attach sched)
    else ignore (Res.Recovery.attach sched);
    let jobs =
      List.init 6 (fun i ->
          let spec = mk_spec (Printf.sprintf "rb%d" i) (24 + (i mod 3 * 4)) in
          let factory, collect = Res.Ckpt.job_factory ~fabric spec in
          let jid =
            Ctl.Scheduler.submit_factory sched ~restart_limit:3 ~shape:(1, 1, 1)
              factory
          in
          (jid, spec, collect))
    in
    let sim = Cnk.Cluster.sim cluster in
    let death cycle rank =
      ignore
        (Sim.schedule_at sim cycle (fun () ->
             Res.Injector.inject_now inj (Res.Fault_event.Node_death { rank })))
    in
    death 2_600_000 0;
    death 3_400_000 1;
    Ctl.Scheduler.drain sched;
    let restarts, restored, scratch =
      List.fold_left
        (fun (r, got, s) (jid, spec, collect) ->
          let n = Ctl.Scheduler.restarts sched jid in
          if n = 0 then (r, got, s)
          else
            List.fold_left
              (fun (r, got, s) (o : Res.Ckpt.outcome) ->
                (r, got + o.Res.Ckpt.restored_step, s + spec.Res.Ckpt.steps))
              (r + n, got, s) (collect ()))
        (0, 0, 0) jobs
    in
    let mttr_p50, mttr_p99 =
      match
        Bg_obs.Obs.timer_histogram machine.Machine.obs ~subsystem:"scheduler"
          ~name:"recovery_latency_cycles" ()
      with
      | None -> (0., 0.)
      | Some h ->
        (Stats.Histogram.percentile h 0.5, Stats.Histogram.percentile h 0.99)
    in
    let makespan = Sim.now sim in
    let wall = Unix.gettimeofday () -. t0 in
    Printf.printf
      "  %-8s makespan %9d  restarts %d  restored/scratch %3d/%3d steps  MTTR p50 %8.0f p99 %8.0f  (%.3f s)\n%!"
      name makespan restarts restored scratch mttr_p50 mttr_p99 wall;
    (name, makespan, restarts, restored, scratch, mttr_p50, mttr_p99, wall)
  in
  let classic = cell ~name:"classic" ~policy:false in
  let healing = cell ~name:"policy" ~policy:true in
  let cells = [ classic; healing ] in
  let buf = Buffer.create 512 in
  Buffer.add_string buf
    "{\"experiment\":\"recover\",\"workload\":\"6 ckpt jobs, 2 node deaths\",\"cells\":[";
  List.iteri
    (fun i (name, makespan, restarts, restored, scratch, p50, p99, wall) ->
      if i > 0 then Buffer.add_char buf ',';
      Buffer.add_string buf
        (Printf.sprintf
           "{\"name\":\"%s\",\"makespan_cycles\":%d,\"restarts\":%d,\"restored_steps\":%d,\"scratch_steps\":%d,\"mttr_p50_cycles\":%.0f,\"mttr_p99_cycles\":%.0f,\"wall_s\":%.6f}"
           name makespan restarts restored scratch p50 p99 wall))
    cells;
  Buffer.add_string buf "]}";
  let oc = open_out "BENCH_recover.json" in
  output_string oc (Buffer.contents buf);
  close_out oc;
  Printf.printf "wrote BENCH_recover.json\n"

(* ------------------------------------------------------------------ *)
(* Job-stream scheduler: policy sweep throughput and utilization *)

let run_jobsched () =
  let module W = Bg_sched.Workload in
  let module Svc = Bg_sched.Service in
  let module Strat = Bg_sched.Strategy in
  let module Slo = Bg_sched.Slo in
  section "jobsched: multi-tenant policy sweep (FCFS / EASY / gang / fair)";
  (* One seeded mixed workload (8 tenants x 8 jobs) replayed under each
     policy on the 64-node machine — fault-free, so the numbers isolate
     the dispatcher itself.  jobs/s is simulated completions per wall
     second: what running the control system as a service costs. *)
  let cell kind =
    let t0 = Unix.gettimeofday () in
    let cluster =
      Cnk.Cluster.create ~dims:(4, 4, 4) ~seed:1L ~nodes_per_io_node:8 ()
    in
    let machine = Cnk.Cluster.machine cluster in
    Bg_obs.Obs.set_enabled machine.Machine.obs true;
    Cnk.Cluster.boot_all cluster;
    let specs =
      W.generate ~seed:1L (W.mixed_tenants ~tenants:8 ~jobs_per_tenant:8)
    in
    let svc = Svc.create ~kind cluster specs in
    Svc.run svc;
    let strat = Svc.strategy svc in
    let slo =
      Slo.collect machine.Machine.obs ~tenants:(Svc.tenants_of specs)
        ~policy:(Strat.kind_name kind) ~seed:1 ~total_nodes:64
        ~makespan:(Svc.makespan svc) ~backfilled:(Strat.backfilled strat)
        ~gangs_started:(Strat.gangs_started strat) ()
    in
    let wall = Unix.gettimeofday () -. t0 in
    let jobs_per_s = float_of_int slo.Slo.completed_total /. wall in
    Printf.printf
      "  %-6s %3d completed  makespan %9d  util %5.1f%%  %8.0f jobs/s  (%.3f s)\n%!"
      (Strat.kind_name kind) slo.Slo.completed_total slo.Slo.makespan
      (Slo.utilization_pct slo) jobs_per_s wall;
    (Strat.kind_name kind, slo, jobs_per_s, wall)
  in
  let cells = List.map cell Strat.all_kinds in
  let buf = Buffer.create 512 in
  Buffer.add_string buf
    "{\"experiment\":\"jobsched\",\"workload\":\"8 tenants x 8 jobs, 64 nodes\",\"cells\":[";
  List.iteri
    (fun i (name, (slo : Slo.report), jobs_per_s, wall) ->
      if i > 0 then Buffer.add_char buf ',';
      Buffer.add_string buf
        (Printf.sprintf
           "{\"name\":\"%s\",\"completed\":%d,\"failed\":%d,\"makespan_cycles\":%d,\"utilization_milli\":%d,\"backfilled\":%d,\"gangs_started\":%d,\"jobs_per_sec\":%.0f,\"wall_s\":%.6f}"
           name slo.Slo.completed_total slo.Slo.failed_total slo.Slo.makespan
           slo.Slo.utilization_milli slo.Slo.backfilled slo.Slo.gangs_started
           jobs_per_s wall))
    cells;
  Buffer.add_string buf "]}";
  let oc = open_out "BENCH_sched.json" in
  output_string oc (Buffer.contents buf);
  close_out oc;
  Printf.printf "wrote BENCH_sched.json\n"

let experiments =
  [
    ("fwq", run_fwq);
    ("latency", run_latency);
    ("bandwidth", run_bandwidth);
    ("stability", run_stability);
    ("capability", run_capability);
    ("bringup", run_bringup);
    ("mapping", run_mapping);
    ("guard", run_guard);
    ("noise-scaling", run_noise_scaling);
    ("tlb", run_tlb);
    ("sched", run_sched);
    ("affinity", run_affinity);
    ("cache", run_cache);
    ("l1-parity", run_l1_parity);
    ("ftq", run_ftq);
    ("io-offload", run_io_offload);
    ("recovery", run_recovery);
    ("collectives", run_collectives);
    ("halo", run_halo);
    ("msg", run_msg);
    ("cg", run_cg);
    ("congestion", run_congestion);
    ("micro", run_micro);
    ("obs", run_obs);
    ("health", run_health);
    ("snap", run_snap);
    ("recover", run_recover);
    ("jobsched", run_jobsched);
  ]

let () =
  match Array.to_list Sys.argv with
  | [ _ ] -> List.iter (fun (_, f) -> f ()) experiments
  | [ _; "list" ] -> List.iter (fun (name, _) -> print_endline name) experiments
  | [ _; name ] -> (
    match List.assoc_opt name experiments with
    | Some f -> f ()
    | None ->
      Printf.eprintf "unknown experiment %s; try 'list'\n" name;
      exit 1)
  | _ ->
    prerr_endline "usage: main.exe [experiment]";
    exit 1
