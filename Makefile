# Convenience targets; everything is plain dune underneath.

.PHONY: all build test bench examples docs csv clean

all: build

build:
	dune build @all

test:
	dune runtest --force

bench:
	dune exec bench/main.exe

examples:
	for e in quickstart io_offload openmp_phase persistent_restart \
	         python_dynlink space_sharing bringup_session; do \
	  echo "== $$e"; dune exec examples/$$e.exe; done

docs:
	dune build @doc

csv:
	dune exec bin/export_data.exe -- --out results

clean:
	dune clean
