# Convenience targets; everything is plain dune underneath.

.PHONY: all build test bench examples docs csv trace-smoke resilience-smoke attribute-smoke cio-chaos-smoke msg-smoke causal-smoke snap-smoke health-smoke heal-smoke sched-smoke clean

all: build

build:
	dune build @all

test:
	dune runtest --force

bench:
	dune exec bench/main.exe

examples:
	for e in quickstart io_offload openmp_phase persistent_restart \
	         python_dynlink space_sharing bringup_session; do \
	  echo "== $$e"; dune exec examples/$$e.exe; done

docs:
	dune build @doc

csv:
	dune exec bin/export_data.exe -- --out results

# Tiny instrumented FWQ run; obs_tool validates the emitted JSON against
# its in-repo RFC 8259 checker and fails if any span category is missing.
trace-smoke:
	dune exec bin/obs_tool.exe -- --app fwq --samples 200 \
	  --chrome-trace /tmp/obs_smoke.json --metrics-csv /tmp/obs_smoke.csv
	@grep -q '"traceEvents"' /tmp/obs_smoke.json
	@echo "trace-smoke OK"

# Seeded fault-injection sweep, run twice: the tool itself checks that
# in-place parity recovery beats rollback wherever a fault forced one,
# and the two runs must print bit-identical digest lines.
resilience-smoke:
	dune exec bin/resilience_tool.exe -- --seed 1 --csv /tmp/resilience_sweep.csv \
	  | grep digest > /tmp/resilience_smoke_a.txt
	dune exec bin/resilience_tool.exe -- --seed 1 \
	  | grep digest > /tmp/resilience_smoke_b.txt
	@cmp /tmp/resilience_smoke_a.txt /tmp/resilience_smoke_b.txt
	@echo "resilience-smoke OK"

# CIO chaos sweep, run twice: the tool itself checks that every faulty
# cell's app-visible file bytes hash identically to the fault-free run's
# and that no request surfaced EIO; the two runs must print bit-identical
# digest lines.
cio-chaos-smoke:
	dune exec bin/cio_chaos_tool.exe -- --seed 1 --csv /tmp/cio_chaos_sweep.csv \
	  | grep digest > /tmp/cio_chaos_smoke_a.txt
	dune exec bin/cio_chaos_tool.exe -- --seed 1 \
	  | grep digest > /tmp/cio_chaos_smoke_b.txt
	@cmp /tmp/cio_chaos_smoke_a.txt /tmp/cio_chaos_smoke_b.txt
	@echo "cio-chaos-smoke OK"

# Table I messaging sweep over the DMA engine, run twice: the tool
# itself asserts CNK's user-space path beats the FWK's kernel-mediated
# path at every size and that the 1 kHz tick widens the gap; the two
# runs must print bit-identical sweep-digest lines.
msg-smoke:
	dune exec bin/msg_tool.exe -- --json /tmp/BENCH_msg.json \
	  | grep digest > /tmp/msg_smoke_a.txt
	dune exec bin/msg_tool.exe -- \
	  | grep digest > /tmp/msg_smoke_b.txt
	@cmp /tmp/msg_smoke_a.txt /tmp/msg_smoke_b.txt
	@echo "msg-smoke OK"

# Noise-attribution run, twice: the tool asserts FWK's tick+daemon share
# beats CNK's and that every ledger conserves cycles; the two runs must
# print bit-identical acct/UPC digest lines.
attribute-smoke:
	dune exec bin/noise_tool.exe -- attribute --samples 500 \
	  --folded-prefix /tmp/attr_smoke \
	  | grep digest > /tmp/attribute_smoke_a.txt
	dune exec bin/noise_tool.exe -- attribute --samples 500 \
	  --folded-prefix /tmp/attr_smoke \
	  | grep digest > /tmp/attribute_smoke_b.txt
	@cmp /tmp/attribute_smoke_a.txt /tmp/attribute_smoke_b.txt
	@test -s /tmp/attr_smoke_cnk.folded && test -s /tmp/attr_smoke_fwk.folded
	@echo "attribute-smoke OK"

# Causal critical-path run on the seeded 32-node allreduce, twice: the
# tool itself asserts the FWK critical path blames a strictly larger
# tick+daemon share than CNK's and that attribution tiles the path
# exactly; the two runs must print bit-identical causal digest lines.
causal-smoke:
	dune exec bin/trace_tool.exe -- critical-path --nodes 32 \
	  --chrome-trace /tmp/causal_smoke_flow.json \
	  | grep digest > /tmp/causal_smoke_a.txt
	dune exec bin/trace_tool.exe -- critical-path --nodes 32 \
	  | grep digest > /tmp/causal_smoke_b.txt
	@cmp /tmp/causal_smoke_a.txt /tmp/causal_smoke_b.txt
	@grep -q '"ph":"s"' /tmp/causal_smoke_flow.json
	@echo "causal-smoke OK"

# Snapshot/restore selftest, run twice: the tool itself proves the
# restore-continuation invariant on both kernels (snapshot mid-run,
# replay-restore with byte verification, continue, digests must equal
# the uninterrupted run's) and bisects a seeded glitch on each scenario
# down to its exact event; the two runs' output must be bit-identical.
snap-smoke:
	dune exec bin/bisect_tool.exe -- --selftest > /tmp/snap_smoke_a.txt
	dune exec bin/bisect_tool.exe -- --selftest > /tmp/snap_smoke_b.txt
	@cmp /tmp/snap_smoke_a.txt /tmp/snap_smoke_b.txt
	@grep -q "restore cnk_io" /tmp/snap_smoke_a.txt
	@grep -q "restore fwk_noise" /tmp/snap_smoke_a.txt
	@grep -q "selftest ok" /tmp/snap_smoke_a.txt
	@echo "snap-smoke OK"

# Seeded ciod-crash chaos run through the machine health service, twice:
# the tool itself asserts alerts fired, Recovery consumed them, and the
# postmortem bundle is valid JSON naming the failing io_node and the
# implicated series; the two runs must print bit-identical digest lines
# and byte-identical postmortem bundles.
health-smoke:
	dune exec bin/health_tool.exe -- --seed 1 --postmortem /tmp/health_smoke_a.json \
	  | grep digest > /tmp/health_smoke_a.txt
	dune exec bin/health_tool.exe -- --seed 1 --postmortem /tmp/health_smoke_b.json --quiet \
	  | grep digest > /tmp/health_smoke_b.txt
	@cmp /tmp/health_smoke_a.txt /tmp/health_smoke_b.txt
	@cmp /tmp/health_smoke_a.json /tmp/health_smoke_b.json
	@grep -q '"schema":"bg-health-postmortem-v1"' /tmp/health_smoke_a.json
	@grep -q 'io=1' /tmp/health_smoke_a.json
	@echo "health-smoke OK"

# Compound-fault chaos run through the self-healing policy engine, run
# twice: the tool itself asserts every job's state matches its
# fault-free twin byte for byte, spares/drain/rebuild/degradation all
# fired, and a submit offered while Critical was refused; the two
# same-seed runs must print bit-identical digest lines (policy decision
# timeline, sim trace, scheduler state).
heal-smoke:
	dune exec bin/heal_tool.exe -- --seed 1 --timeline-csv /tmp/heal_timeline.csv --quiet \
	  | grep digest > /tmp/heal_smoke_a.txt
	dune exec bin/heal_tool.exe -- --seed 1 --quiet \
	  | grep digest > /tmp/heal_smoke_b.txt
	@cmp /tmp/heal_smoke_a.txt /tmp/heal_smoke_b.txt
	@grep -q 'pset_rebuilt' /tmp/heal_timeline.csv
	@grep -q 'admission closed' /tmp/heal_timeline.csv
	@echo "heal-smoke OK"

# Multi-tenant policy sweep (FCFS / EASY / gang / fair-share over
# torus-aware placement, faults injected mid-queue), run twice: the
# tool itself asserts arrival conservation, the utilization and
# slowdown shape claims, gang co-scheduling, backfill shedding under
# degradation, and a same-seed FCFS twin; the two runs must print
# bit-identical per-policy digest lines (SLO report, sim trace,
# scheduler state).
sched-smoke:
	dune exec bin/sched_tool.exe -- --seed 1 --slo-csv /tmp/sched_slo_smoke.csv --quiet \
	  | grep digest > /tmp/sched_smoke_a.txt
	dune exec bin/sched_tool.exe -- --seed 1 --quiet \
	  | grep digest > /tmp/sched_smoke_b.txt
	@cmp /tmp/sched_smoke_a.txt /tmp/sched_smoke_b.txt
	@grep -q '^fair,' /tmp/sched_slo_smoke.csv
	@echo "sched-smoke OK"

clean:
	dune clean
